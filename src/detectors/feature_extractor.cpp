#include "detectors/feature_extractor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/cost_attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace opprentice::detectors {
namespace {

// Streaming (per-point) family histograms. Exactly one observation per
// family per fed point, so every family's count matches
// `opprentice.extract.points` — the consistency contract the bench
// snapshot (BENCH_sec58.json) documents.
obs::Histogram& family_histogram(std::string_view family) {
  std::string name = "opprentice.extract.family.";
  name += family;
  name += ".us";
  return obs::histogram(name);
}

// Batch extraction records per-pass µs/point into its own namespace so it
// cannot skew the streaming per-point counts above.
obs::Histogram& batch_family_histogram(std::string_view family) {
  std::string name = "opprentice.extract.batch.family.";
  name += family;
  name += ".us_per_point";
  return obs::histogram(name);
}

// Fault-boundary instruments, looked up once (registration takes a
// mutex; updates are relaxed atomics on the extraction hot path).
struct BoundaryCounters {
  obs::Counter* exceptions;
  obs::Counter* scrubbed;
  obs::Counter* quarantined;
};

const BoundaryCounters& boundary_counters() {
  static const BoundaryCounters counters{
      // opprentice-hotpath: allow(cold-call) magic static: registry lookup runs once per process
      &obs::counter("opprentice.detector.exceptions"),
      // opprentice-hotpath: allow(cold-call) same one-time registry lookup
      &obs::counter("opprentice.detector.scrubbed"),
      // opprentice-hotpath: allow(cold-call) same one-time registry lookup
      &obs::counter("opprentice.detector.quarantined")};
  return counters;
}

// One point through one configuration's fault boundary (DESIGN.md §5f).
// `consecutive` and `quarantined` are that configuration's private state:
// in batch extraction they live in the column's task, in streaming in the
// extractor — either way no other thread touches them, so the boundary
// adds no synchronization and decisions are bit-identical at any thread
// count. A quarantined configuration is no longer fed at all (a throwing
// detector's internal state is suspect after the failures that tripped
// quarantine).
double guarded_severity(Detector& detector, double value, std::uint64_t key,
                        std::size_t config_index, bool faults_active,
                        const FaultBoundary& boundary,
                        std::size_t& consecutive, std::uint8_t& quarantined) {
  if (quarantined != 0) return boundary.neutral;
  bool failed = false;
  double severity = boundary.neutral;
  try {
    if (faults_active &&
        // opprentice-hotpath: allow(cold-call) fault check touches registry counters only when a fault actually fires; off in production
        util::inject_fault(util::faults::kDetectorThrow, key)) {
      // opprentice-hotpath: allow(throw) fault injection only; gated behind faults_active
      throw util::InjectedFault("injected detector.throw");
    }
    // opprentice-hotpath: allow(dispatch) virtual dispatch: every OPPRENTICE_HOT feed override is linted as its own root; svd/wavelet stay unannotated until their per-point recompute is fixed (ROADMAP item 2)
    severity = detector.feed(value);
    if (faults_active &&
        // opprentice-hotpath: allow(cold-call) fault check touches registry counters only when a fault actually fires; off in production
        util::inject_fault(util::faults::kDetectorNan, key)) {
      severity = std::numeric_limits<double>::quiet_NaN();
    }
  } catch (const std::exception&) {
    boundary_counters().exceptions->add();
    failed = true;
  }
  if (!failed && !std::isfinite(severity)) {
    boundary_counters().scrubbed->add();
    failed = true;
  }
  if (!failed) {
    consecutive = 0;
    return severity;
  }
  ++consecutive;
  if (boundary.quarantine_after > 0 &&
      consecutive >= boundary.quarantine_after && quarantined == 0) {
    quarantined = 1;
    boundary_counters().quarantined->add();
    // opprentice-hotpath: allow(cold-call) name() builds a string only on the quarantine transition, at most once per configuration
    const std::string configuration = detector.name();
    // opprentice-hotpath: allow(cold-call) warn log on the quarantine transition, never on the steady-state path
    obs::log(obs::LogLevel::kWarn, "detector", "quarantine",
             {{"configuration", configuration},
              {"consecutive_failures", consecutive}});
    // The quarantine decision is a pure function of the column's fault
    // stream, so this event is deterministic at any thread count
    // (flight_recorder.hpp).
    // opprentice-hotpath: allow(cold-call) flight-recorder append on the quarantine transition only
    obs::flight_record("detector", "quarantine",
                       config_index ^ boundary.key_salt,
                       "configuration=" + configuration);
  }
  return boundary.neutral;
}

}  // namespace

std::string family_of(std::string_view configuration_name) {
  const std::size_t paren = configuration_name.find('(');
  return std::string(configuration_name.substr(
      0, paren == std::string_view::npos ? configuration_name.size()
                                         : paren));
}

std::vector<double> FeatureMatrix::row(std::size_t i) const {
  std::vector<double> out(columns.size());
  for (std::size_t f = 0; f < columns.size(); ++f) out[f] = columns[f][i];
  return out;
}

std::size_t FeatureMatrix::num_quarantined() const {
  std::size_t n = 0;
  for (const std::uint8_t q : quarantined) n += q != 0 ? 1 : 0;
  return n;
}

FeatureMatrix extract_features(const ts::TimeSeries& series,
                               const std::vector<DetectorPtr>& detectors,
                               const FaultBoundary& boundary) {
  obs::ScopedSpan span("extract.batch", "extract");
  span.arg("points", series.size());
  span.arg("configurations", detectors.size());
  const bool timed = obs::detailed_timing_enabled();
  const bool faults_active = util::faults_enabled();

  FeatureMatrix m;
  m.num_rows = series.size();
  m.feature_names.reserve(detectors.size());
  m.columns.resize(detectors.size());
  m.quarantined.assign(detectors.size(), 0);
  for (const auto& detector : detectors) {
    m.feature_names.push_back(detector->name());
    m.max_warmup = std::max(m.max_warmup, detector->warmup_points());
  }

  // Each configuration is an independent column: the detector instance,
  // the severity sequence, the fault-boundary state, and the output slot
  // belong to one task only, so the columns and quarantine decisions are
  // bit-identical at any thread count.
  util::parallel_for(detectors.size(), [&](std::size_t f) {
    const auto& detector = detectors[f];
    detector->reset();
    obs::Stopwatch watch;
    std::vector<double> column(series.size(), 0.0);
    std::size_t consecutive_failures = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
      column[i] = guarded_severity(*detector, series[i],
                                   util::fault_key(f, i) ^ boundary.key_salt,
                                   f, faults_active, boundary,
                                   consecutive_failures, m.quarantined[f]);
    }
    if (timed && series.size() > 0) {
      // One observation per configuration pass, normalized to µs/point.
      // Recorded under extract.batch.* (not the streaming family
      // histograms) so per-point counts stay consistent with
      // opprentice.extract.points, plus the per-configuration slot that
      // feeds the cost-attribution table.
      const double elapsed = watch.elapsed_us();
      batch_family_histogram(family_of(detector->name()))
          .record(elapsed / static_cast<double>(series.size()));
      obs::CostAttribution::instance()
          .slot(detector->name())
          .record_pass(elapsed, series.size());
    }
    // Zero out this detector's own warm-up region so warm-up artifacts
    // cannot leak into training even when other detectors are ready.
    const std::size_t warm = std::min(detector->warmup_points(), series.size());
    std::fill(column.begin(),
              column.begin() + static_cast<std::ptrdiff_t>(warm), 0.0);
    m.columns[f] = std::move(column);
  });
  return m;
}

FeatureMatrix extract_standard_features(const ts::TimeSeries& series) {
  const SeriesContext ctx{series.points_per_day(), series.points_per_week()};
  return extract_features(series, standard_configurations(ctx));
}

StreamingExtractor::StreamingExtractor(std::vector<DetectorPtr> detectors,
                                       const FaultBoundary& boundary)
    : detectors_(std::move(detectors)),
      boundary_(boundary),
      consecutive_failures_(detectors_.size(), 0),
      quarantined_(detectors_.size(), 0),
      // Sampled here and at reset(): install fault plans before
      // constructing the extractor (CLI mains and test setup do).
      faults_active_(util::faults_enabled()) {
  points_counter_ = &obs::counter("opprentice.extract.points");
  feed_histogram_ = &obs::histogram("opprentice.extract.feed.us");
  cost_slots_.reserve(detectors_.size());
  for (std::size_t f = 0; f < detectors_.size(); ++f) {
    max_warmup_ = std::max(max_warmup_, detectors_[f]->warmup_points());
    cost_slots_.push_back(
        &obs::CostAttribution::instance().slot(detectors_[f]->name()));
    const std::string family = family_of(detectors_[f]->name());
    if (families_.empty() ||
        family != family_of(detectors_[families_.back().begin]->name())) {
      families_.push_back({f, f + 1, &family_histogram(family)});
    } else {
      families_.back().end = f + 1;
    }
  }
}

std::vector<std::string> StreamingExtractor::feature_names() const {
  std::vector<std::string> names;
  names.reserve(detectors_.size());
  for (const auto& d : detectors_) names.push_back(d->name());
  return names;
}

double StreamingExtractor::guarded_feed(std::size_t f, double value) {
  return guarded_severity(
      *detectors_[f], value,
      util::fault_key(f, points_seen_) ^ boundary_.key_salt, f,
      faults_active_, boundary_, consecutive_failures_[f], quarantined_[f]);
}

void StreamingExtractor::feed_into(double value,
                                   std::vector<double>& features) {
  for (std::size_t f = 0; f < detectors_.size(); ++f) {
    const double severity = guarded_feed(f, value);
    features[f] =
        points_seen_ < detectors_[f]->warmup_points() ? 0.0 : severity;
  }
}

std::vector<double> StreamingExtractor::feed(double value) {
  // opprentice-hotpath: allow(alloc) per-point output buffer is this API's contract; feed_into is the allocation-free variant
  std::vector<double> features(detectors_.size());
  if (obs::detailed_timing_enabled()) {
    // Per-family µs/point plus the per-configuration attribution slots:
    // §5.8's extraction budget broken down by where it actually goes,
    // sharp enough to name the individual configurations worth attacking
    // (ROADMAP item 2). Each configuration is timed individually; the
    // family observation is the sum of its members so both levels stay
    // consistent.
    obs::Stopwatch total;
    for (const auto& fam : families_) {
      double family_us = 0.0;
      for (std::size_t f = fam.begin; f < fam.end; ++f) {
        obs::Stopwatch watch;
        const double severity = guarded_feed(f, value);
        const double config_us = watch.elapsed_us();
        cost_slots_[f]->record(config_us);
        family_us += config_us;
        features[f] =
            points_seen_ < detectors_[f]->warmup_points() ? 0.0 : severity;
      }
      fam.histogram->record(family_us);
    }
    feed_histogram_->record(total.elapsed_us());
  } else {
    feed_into(value, features);
  }
  points_counter_->add();
  ++points_seen_;
  return features;
}

void StreamingExtractor::reset() {
  for (auto& d : detectors_) d->reset();
  std::fill(consecutive_failures_.begin(), consecutive_failures_.end(), 0);
  std::fill(quarantined_.begin(), quarantined_.end(), 0);
  faults_active_ = util::faults_enabled();
  points_seen_ = 0;
}

}  // namespace opprentice::detectors
