#include "detectors/feature_extractor.hpp"

#include <algorithm>

namespace opprentice::detectors {

std::vector<double> FeatureMatrix::row(std::size_t i) const {
  std::vector<double> out(columns.size());
  for (std::size_t f = 0; f < columns.size(); ++f) out[f] = columns[f][i];
  return out;
}

FeatureMatrix extract_features(const ts::TimeSeries& series,
                               const std::vector<DetectorPtr>& detectors) {
  FeatureMatrix m;
  m.num_rows = series.size();
  m.feature_names.reserve(detectors.size());
  m.columns.reserve(detectors.size());

  for (const auto& detector : detectors) {
    detector->reset();
    m.feature_names.push_back(detector->name());
    m.max_warmup = std::max(m.max_warmup, detector->warmup_points());

    std::vector<double> column(series.size(), 0.0);
    for (std::size_t i = 0; i < series.size(); ++i) {
      column[i] = detector->feed(series[i]);
    }
    // Zero out this detector's own warm-up region so warm-up artifacts
    // cannot leak into training even when other detectors are ready.
    const std::size_t warm = std::min(detector->warmup_points(), series.size());
    std::fill(column.begin(),
              column.begin() + static_cast<std::ptrdiff_t>(warm), 0.0);
    m.columns.push_back(std::move(column));
  }
  return m;
}

FeatureMatrix extract_standard_features(const ts::TimeSeries& series) {
  const SeriesContext ctx{series.points_per_day(), series.points_per_week()};
  return extract_features(series, standard_configurations(ctx));
}

StreamingExtractor::StreamingExtractor(std::vector<DetectorPtr> detectors)
    : detectors_(std::move(detectors)) {
  for (const auto& d : detectors_) {
    max_warmup_ = std::max(max_warmup_, d->warmup_points());
  }
}

std::vector<std::string> StreamingExtractor::feature_names() const {
  std::vector<std::string> names;
  names.reserve(detectors_.size());
  for (const auto& d : detectors_) names.push_back(d->name());
  return names;
}

std::vector<double> StreamingExtractor::feed(double value) {
  std::vector<double> features(detectors_.size());
  for (std::size_t f = 0; f < detectors_.size(); ++f) {
    const double severity = detectors_[f]->feed(value);
    features[f] =
        points_seen_ < detectors_[f]->warmup_points() ? 0.0 : severity;
  }
  ++points_seen_;
  return features;
}

void StreamingExtractor::reset() {
  for (auto& d : detectors_) d->reset();
  points_seen_ = 0;
}

}  // namespace opprentice::detectors
