#include "detectors/feature_extractor.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace opprentice::detectors {
namespace {

obs::Histogram& family_histogram(std::string_view family) {
  std::string name = "opprentice.extract.family.";
  name += family;
  name += ".us";
  return obs::histogram(name);
}

}  // namespace

std::string family_of(std::string_view configuration_name) {
  const std::size_t paren = configuration_name.find('(');
  return std::string(configuration_name.substr(
      0, paren == std::string_view::npos ? configuration_name.size()
                                         : paren));
}

std::vector<double> FeatureMatrix::row(std::size_t i) const {
  std::vector<double> out(columns.size());
  for (std::size_t f = 0; f < columns.size(); ++f) out[f] = columns[f][i];
  return out;
}

FeatureMatrix extract_features(const ts::TimeSeries& series,
                               const std::vector<DetectorPtr>& detectors) {
  obs::ScopedSpan span("extract.batch", "extract");
  span.arg("points", series.size());
  span.arg("configurations", detectors.size());
  const bool timed = obs::detailed_timing_enabled();

  FeatureMatrix m;
  m.num_rows = series.size();
  m.feature_names.reserve(detectors.size());
  m.columns.resize(detectors.size());
  for (const auto& detector : detectors) {
    m.feature_names.push_back(detector->name());
    m.max_warmup = std::max(m.max_warmup, detector->warmup_points());
  }

  // Each configuration is an independent column: the detector instance,
  // the severity sequence, and the output slot belong to one task only,
  // so the columns are bit-identical at any thread count.
  util::parallel_for(detectors.size(), [&](std::size_t f) {
    const auto& detector = detectors[f];
    detector->reset();
    obs::Stopwatch watch;
    std::vector<double> column(series.size(), 0.0);
    for (std::size_t i = 0; i < series.size(); ++i) {
      column[i] = detector->feed(series[i]);
    }
    if (timed && series.size() > 0) {
      // One observation per configuration pass, normalized to µs/point so
      // batch and streaming extraction share one histogram scale.
      family_histogram(family_of(detector->name()))
          .record(watch.elapsed_us() / static_cast<double>(series.size()));
    }
    // Zero out this detector's own warm-up region so warm-up artifacts
    // cannot leak into training even when other detectors are ready.
    const std::size_t warm = std::min(detector->warmup_points(), series.size());
    std::fill(column.begin(),
              column.begin() + static_cast<std::ptrdiff_t>(warm), 0.0);
    m.columns[f] = std::move(column);
  });
  return m;
}

FeatureMatrix extract_standard_features(const ts::TimeSeries& series) {
  const SeriesContext ctx{series.points_per_day(), series.points_per_week()};
  return extract_features(series, standard_configurations(ctx));
}

StreamingExtractor::StreamingExtractor(std::vector<DetectorPtr> detectors)
    : detectors_(std::move(detectors)) {
  points_counter_ = &obs::counter("opprentice.extract.points");
  feed_histogram_ = &obs::histogram("opprentice.extract.feed.us");
  for (std::size_t f = 0; f < detectors_.size(); ++f) {
    max_warmup_ = std::max(max_warmup_, detectors_[f]->warmup_points());
    const std::string family = family_of(detectors_[f]->name());
    if (families_.empty() ||
        family != family_of(detectors_[families_.back().begin]->name())) {
      families_.push_back({f, f + 1, &family_histogram(family)});
    } else {
      families_.back().end = f + 1;
    }
  }
}

std::vector<std::string> StreamingExtractor::feature_names() const {
  std::vector<std::string> names;
  names.reserve(detectors_.size());
  for (const auto& d : detectors_) names.push_back(d->name());
  return names;
}

void StreamingExtractor::feed_into(double value,
                                   std::vector<double>& features) {
  for (std::size_t f = 0; f < detectors_.size(); ++f) {
    const double severity = detectors_[f]->feed(value);
    features[f] =
        points_seen_ < detectors_[f]->warmup_points() ? 0.0 : severity;
  }
}

std::vector<double> StreamingExtractor::feed(double value) {
  std::vector<double> features(detectors_.size());
  if (obs::detailed_timing_enabled()) {
    // Per-family µs/point; §5.8's extraction budget broken down by where
    // it actually goes.
    obs::Stopwatch total;
    for (const auto& fam : families_) {
      obs::Stopwatch watch;
      for (std::size_t f = fam.begin; f < fam.end; ++f) {
        const double severity = detectors_[f]->feed(value);
        features[f] =
            points_seen_ < detectors_[f]->warmup_points() ? 0.0 : severity;
      }
      fam.histogram->record(watch.elapsed_us());
    }
    feed_histogram_->record(total.elapsed_us());
  } else {
    feed_into(value, features);
  }
  points_counter_->add();
  ++points_seen_;
  return features;
}

void StreamingExtractor::reset() {
  for (auto& d : detectors_) d->reset();
  points_seen_ = 0;
}

}  // namespace opprentice::detectors
