// Fixed-capacity ring buffer for detectors that need a sliding window of
// recent points (lags, moving averages, SVD/wavelet windows).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace opprentice::detectors {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity), data_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("RingBuffer: capacity must be positive");
    }
  }

  void push(T value) {
    data_[head_] = value;
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) ++size_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return size_ == capacity_; }

  // Element pushed `age` steps ago; age 0 = most recent. Requires age < size.
  const T& back(std::size_t age = 0) const {
    // opprentice-hotpath: allow(throw) bounds guard on a programming error; hot callers always pass age < size()
    if (age >= size_) throw std::out_of_range("RingBuffer::back");
    return data_[(head_ + capacity_ - 1 - age) % capacity_];
  }

  // Copies contents oldest-first into `out` (resized to size()).
  void copy_ordered(std::vector<T>& out) const {
    // opprentice-hotpath: allow(alloc) resize targets the fixed window size; allocates only until the scratch buffer first reaches capacity
    out.resize(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      out[i] = data_[(head_ + capacity_ - size_ + i) % capacity_];
    }
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace opprentice::detectors
