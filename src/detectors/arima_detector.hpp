// ARIMA detector [Zhang et al., "Network anomography", IMC'05].
//
// §4.3.3: ARIMA's parameter space is too large to sample, so its "best"
// parameters are estimated from the data, giving exactly one configuration,
// and the estimates are refreshed periodically because data characteristics
// drift. We implement ARIMA(p, 1, 0): first-difference the series (KPI data
// are non-stationary), then fit an AR(p) model to the differences with
// Levinson-Durbin (Yule-Walker equations), selecting p in [1, max_order] by
// AIC — the same spirit as R's auto.arima, which the paper cites. The
// severity is the absolute one-step forecast residual.
#pragma once

#include <vector>

#include "detectors/detector.hpp"
#include "detectors/ring_buffer.hpp"
#include "util/hotpath.hpp"

namespace opprentice::detectors {

struct ArParameters {
  std::vector<double> phi;  // AR coefficients, phi[0] multiplies d_{t-1}
  double noise_variance = 0.0;
  int order() const { return static_cast<int>(phi.size()); }
};

// Fits AR(p) to `xs` with p in [1, max_order] chosen by AIC.
// Exposed for testing and for the parameter-estimation example.
ArParameters fit_ar_by_aic(const std::vector<double>& xs, int max_order);

class ArimaDetector final : public Detector {
 public:
  // ctx sizes the fitting window (two weeks) and refit cadence (daily).
  explicit ArimaDetector(const SeriesContext& ctx, int max_order = 6);

  std::string name() const override;
  std::size_t warmup_points() const override;
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override;

  // Current AR order (0 until the first fit); for tests/examples.
  int current_order() const { return params_.order(); }

 private:
  void refit();

  int max_order_;
  std::size_t fit_window_;
  std::size_t refit_interval_;

  RingBuffer<double> diffs_;
  ArParameters params_;
  double last_value_ = 0.0;
  bool has_last_ = false;
  std::size_t since_refit_ = 0;
  std::size_t seen_ = 0;
};

}  // namespace opprentice::detectors
