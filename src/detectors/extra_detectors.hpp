// Extension detectors beyond the paper's 14.
//
// §4.3.2 / §8: "Emerging detectors, instead of going through
// time-consuming and often frustrating parameter tuning, can be easily
// plugged into Opprentice". These two families demonstrate that: a CUSUM
// change detector and a Holt (double exponential smoothing) predictor.
// They are NOT part of the standard 133 configurations; add them with
// register_extension_families().
#pragma once

#include "detectors/detector.hpp"
#include "detectors/registry.hpp"
#include "detectors/ring_buffer.hpp"
#include "util/hotpath.hpp"

namespace opprentice::detectors {

// Two-sided CUSUM on standardized residuals from a rolling baseline:
//   S+ = max(0, S+ + z - k),  S- = max(0, S- - z - k),
// severity = max(S+, S-). Accumulates evidence of sustained small shifts
// that point-wise detectors miss.
class CusumDetector final : public Detector {
 public:
  // k: slack in standard deviations; window: rolling baseline length.
  CusumDetector(double k, std::size_t window);

  std::string name() const override;
  std::size_t warmup_points() const override { return window_; }
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override;

 private:
  double k_ = 0.0;
  std::size_t window_ = 0;
  RingBuffer<double> history_;
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
  mutable std::vector<double> scratch_;
};

// Holt double exponential smoothing (level + trend, no season):
// severity = |value - one-step forecast|. Complements EWMA on trending
// KPIs.
class HoltDetector final : public Detector {
 public:
  HoltDetector(double alpha, double beta);

  std::string name() const override;
  std::size_t warmup_points() const override { return 8; }
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override;

 private:
  double alpha_ = 0.0;
  double beta_ = 0.0;
  double level_ = 0.0;
  double trend_ = 0.0;
  int seen_ = 0;
};

// Registers the "cusum" (3 configurations) and "holt" (4 configurations)
// families. Throws if they are already registered.
void register_extension_families(DetectorRegistry& registry);

}  // namespace opprentice::detectors
