// Synthetic KPI generation.
//
// The paper evaluates on three proprietary KPIs of a top search engine
// (PV, #SR, SRT — Table 1). We substitute seasonal synthetic series whose
// published statistics (interval, length, seasonality strength, coefficient
// of variation) match Table 1; see DESIGN.md §2 for the substitution
// rationale.
#pragma once

#include <cstdint>
#include <string>

#include "timeseries/time_series.hpp"
#include "util/rng.hpp"

namespace opprentice::datagen {

// Shape of the normal (anomaly-free) behaviour of a KPI.
struct KpiModel {
  std::string name = "kpi";
  std::int64_t start_epoch = 0;
  std::int64_t interval_seconds = 60;
  std::size_t weeks = 8;

  // Mean level of the series.
  double base_level = 1000.0;

  // Relative amplitude of the smooth daily pattern (two peaks per day,
  // like web traffic) and of the weekday/weekend modulation.
  double daily_amplitude = 0.0;
  double weekly_amplitude = 0.0;

  // Relative sigma of multiplicative Gaussian noise.
  double noise_level = 0.02;

  // Lag-1 autocorrelation of the noise (AR(1)); makes residuals realistic.
  double noise_memory = 0.0;

  // Slow modulation of the noise level over weeks (relative amplitude in
  // [0, 1)): the effective sigma wanders smoothly between
  // noise_level * (1 - noise_wander) and noise_level * (1 + noise_wander).
  // Models production nonstationarity — noisy months need different
  // detection thresholds than quiet months (§4.5.2 / Fig 7).
  double noise_wander = 0.0;

  // Heavy-tail burstiness: each point independently bursts with this
  // probability, multiplying the value by a random factor in
  // [1, 1 + burst_magnitude]. Models spiky count KPIs such as #SR.
  double burst_probability = 0.0;
  double burst_magnitude = 0.0;

  // Linear growth of base_level over the whole series (relative).
  double trend = 0.0;

  // When true, the final value is drawn as Poisson(v): the KPI is an
  // event count (e.g. #SR, the number of slow responses).
  bool integer_counts = false;

  // Values are clamped at zero (all paper KPIs are non-negative).
  std::uint64_t seed = 1;
};

// Generates the anomaly-free series described by the model.
ts::TimeSeries generate_normal(const KpiModel& model);

// The deterministic seasonal template of the model at point index i
// (no noise, no bursts); exposed so detectors' expected behaviour can be
// unit-tested against ground truth.
double seasonal_template(const KpiModel& model, std::size_t i);

}  // namespace opprentice::datagen
