// Anomaly injection.
//
// §2.1 of the paper names the anomaly patterns operators care about:
// "jitters, slow ramp-ups, sudden spikes and dips" at different severities.
// The injector plants windows of these patterns (plus sustained level
// shifts and missing points) into a normal series and records the exact
// ground-truth windows.
#pragma once

#include <cstdint>
#include <vector>

#include "datagen/kpi_model.hpp"
#include "timeseries/labels.hpp"
#include "timeseries/time_series.hpp"
#include "util/rng.hpp"

namespace opprentice::datagen {

enum class AnomalyKind {
  kSpike,       // sudden short increase
  kDip,         // sudden short drop
  kRampUp,      // slow drift upward, then recovery
  kRampDown,    // slow drift downward, then recovery
  kJitter,      // sustained alternating oscillation
  kLevelShift,  // sustained offset
};

const char* to_string(AnomalyKind kind);

struct InjectedAnomaly {
  AnomalyKind kind = AnomalyKind::kSpike;
  ts::LabelWindow window;
  double magnitude = 0.0;  // relative to the local level
};

struct InjectionSpec {
  // Target fraction of points that end up anomalous (Table 1 companion
  // text: 7.8% / 2.8% / 7.4% for PV / #SR / SRT).
  double anomaly_fraction = 0.05;

  // Relative weight of each anomaly kind (same order as AnomalyKind).
  std::vector<double> kind_weights = {1.0, 1.0, 0.5, 0.5, 0.5, 0.5};

  // Window length bounds in points for the sustained kinds; spikes/dips
  // use [1, short_max_points].
  std::size_t short_max_points = 5;
  std::size_t long_min_points = 10;
  std::size_t long_max_points = 60;

  // Magnitude bounds, relative to the local value.
  double min_magnitude = 0.2;
  double max_magnitude = 1.0;

  // Whether level shifts may go downward (false for count KPIs like #SR
  // where only increases are anomalous).
  bool allow_downward_shift = true;

  // Per-kind phase-in point as a fraction of the series (same order as
  // AnomalyKind; missing entries = 0.0). A kind only occurs after its
  // phase-in point — this models the paper's observation that new anomaly
  // types emerge over time, which is what makes incremental retraining
  // (I4) beat a frozen initial training set (F4).
  std::vector<double> kind_phase_in;

  // Anomaly regimes (§4.5.2's premise: "the underlying problems that
  // cause KPI anomalies might last for some time before they are really
  // fixed, so the neighboring weeks are more likely to have similar
  // anomalies"). Every `regime_weeks` weeks, one anomaly kind becomes
  // dominant and magnitudes concentrate in a regime-specific band, so
  // neighbouring weeks need similar cThlds. 0 disables regimes.
  std::size_t regime_weeks = 0;

  // Fraction of points independently turned into missing values (dirty
  // data, §6). Missing points are NOT labeled anomalous.
  double missing_fraction = 0.0;

  std::uint64_t seed = 7;
};

struct GeneratedKpi {
  ts::TimeSeries series;
  ts::LabelSet ground_truth;
  std::vector<InjectedAnomaly> anomalies;
};

// Injects anomalies into `normal` until the target fraction is reached.
// Windows never overlap; each window's points are labeled anomalous.
GeneratedKpi inject_anomalies(const ts::TimeSeries& normal,
                              const InjectionSpec& spec);

// Convenience: generate_normal + inject_anomalies.
GeneratedKpi generate_kpi(const KpiModel& model, const InjectionSpec& spec);

}  // namespace opprentice::datagen
