#include "datagen/kpi_model.hpp"

#include <algorithm>
#include <cmath>

namespace opprentice::datagen {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

double seasonal_template(const KpiModel& model, std::size_t i) {
  const double points_per_day =
      static_cast<double>(ts::kSecondsPerDay) /
      static_cast<double>(model.interval_seconds);
  const double day_phase =
      static_cast<double>(i % static_cast<std::size_t>(points_per_day)) /
      points_per_day;
  // Two-peak daily shape typical of web traffic: a main evening peak and a
  // secondary midday peak, with a deep night valley.
  const double daily = 0.6 * std::sin(2.0 * kPi * (day_phase - 0.3)) +
                       0.4 * std::sin(4.0 * kPi * (day_phase - 0.15));

  const std::size_t day_index =
      i / static_cast<std::size_t>(points_per_day);
  const std::size_t day_of_week = day_index % 7;
  // Weekend days sit lower than weekdays.
  const double weekly = (day_of_week == 5 || day_of_week == 6) ? -1.0 : 0.25;

  const double total_points = points_per_day * 7.0 *
                              static_cast<double>(model.weeks);
  const double trend =
      model.trend * static_cast<double>(i) / std::max(total_points, 1.0);

  double level = model.base_level *
                 (1.0 + model.daily_amplitude * daily +
                  model.weekly_amplitude * weekly + trend);
  return std::max(level, 0.0);
}

ts::TimeSeries generate_normal(const KpiModel& model) {
  util::Rng rng(model.seed);
  const std::size_t points_per_week =
      static_cast<std::size_t>(ts::kSecondsPerWeek / model.interval_seconds);
  const std::size_t n = points_per_week * model.weeks;

  std::vector<double> values(n);
  double ar_state = 0.0;
  const double memory = std::clamp(model.noise_memory, 0.0, 0.999);
  // Scale the innovation so the stationary AR(1) variance equals
  // noise_level^2 regardless of memory.
  const double innovation_sigma =
      model.noise_level * std::sqrt(1.0 - memory * memory);

  // Slow noise-level modulation: a heavily damped random walk updated
  // daily, reflected into [1 - wander, 1 + wander].
  const double wander = std::clamp(model.noise_wander, 0.0, 0.95);
  util::Rng wander_rng(model.seed ^ 0x57A9D3ULL);
  const std::size_t points_per_day_count =
      static_cast<std::size_t>(ts::kSecondsPerDay / model.interval_seconds);
  double wander_pos = wander_rng.uniform(-1.0, 1.0);

  for (std::size_t i = 0; i < n; ++i) {
    if (wander > 0.0 && i % points_per_day_count == 0) {
      wander_pos += wander_rng.uniform(-0.3, 0.3);
      if (wander_pos < -1.0) wander_pos = -2.0 - wander_pos;
      if (wander_pos > 1.0) wander_pos = 2.0 - wander_pos;
    }
    const double noise_factor = 1.0 + wander * wander_pos;
    ar_state = memory * ar_state +
               rng.normal(0.0, innovation_sigma * noise_factor);
    double v = seasonal_template(model, i) * (1.0 + ar_state);
    if (model.burst_probability > 0.0 &&
        rng.uniform() < model.burst_probability) {
      v *= 1.0 + rng.uniform(0.0, model.burst_magnitude);
    }
    v = std::max(v, 0.0);
    if (model.integer_counts) {
      v = static_cast<double>(rng.poisson(v));
    }
    values[i] = v;
  }
  return ts::TimeSeries(model.name, model.start_epoch, model.interval_seconds,
                        std::move(values));
}

}  // namespace opprentice::datagen
