#include "datagen/anomaly_injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace opprentice::datagen {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kPi = 3.14159265358979323846;

AnomalyKind pick_kind(util::Rng& rng, const std::vector<double>& weights) {
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  double r = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<AnomalyKind>(i);
  }
  return AnomalyKind::kSpike;
}

bool is_short(AnomalyKind kind) {
  return kind == AnomalyKind::kSpike || kind == AnomalyKind::kDip;
}

// Applies the anomaly pattern to values[w.begin, w.end).
void apply(AnomalyKind kind, const ts::LabelWindow& w, double magnitude,
           util::Rng& rng, std::vector<double>& values) {
  const std::size_t len = w.length();
  for (std::size_t i = 0; i < len; ++i) {
    double& v = values[w.begin + i];
    if (std::isnan(v)) continue;
    const double progress =
        len > 1 ? static_cast<double>(i) / static_cast<double>(len - 1) : 1.0;
    switch (kind) {
      case AnomalyKind::kSpike:
        v *= 1.0 + magnitude;
        break;
      case AnomalyKind::kDip:
        v *= std::max(0.0, 1.0 - magnitude);
        break;
      case AnomalyKind::kRampUp: {
        // Drift up over the first 70% of the window, then recover. The
        // ramp starts at 35% of the magnitude: operators label the window
        // from where the drift becomes visible, not from zero deviation.
        const double shape = progress < 0.7 ? 0.35 + 0.65 * progress / 0.7
                                            : (1.0 - progress) / 0.3;
        v *= 1.0 + magnitude * shape;
        break;
      }
      case AnomalyKind::kRampDown: {
        const double shape = progress < 0.7 ? 0.35 + 0.65 * progress / 0.7
                                            : (1.0 - progress) / 0.3;
        v *= std::max(0.0, 1.0 - magnitude * shape);
        break;
      }
      case AnomalyKind::kJitter:
        // Alternating oscillation with small phase noise.
        v *= 1.0 + magnitude *
                       std::sin(kPi * static_cast<double>(i) +
                                rng.uniform(-0.3, 0.3)) *
                       (i % 2 == 0 ? 1.0 : -1.0) * 0.5 +
             magnitude * rng.uniform(-0.25, 0.25);
        v = std::max(v, 0.0);
        break;
      case AnomalyKind::kLevelShift:
        // magnitude carries the shift sign (chosen once per window).
        v = std::max(0.0, v * (1.0 + magnitude));
        break;
    }
  }
}

}  // namespace

const char* to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kSpike: return "spike";
    case AnomalyKind::kDip: return "dip";
    case AnomalyKind::kRampUp: return "ramp-up";
    case AnomalyKind::kRampDown: return "ramp-down";
    case AnomalyKind::kJitter: return "jitter";
    case AnomalyKind::kLevelShift: return "level-shift";
  }
  return "unknown";
}

GeneratedKpi inject_anomalies(const ts::TimeSeries& normal,
                              const InjectionSpec& spec) {
  util::Rng rng(spec.seed);
  std::vector<double> values(normal.values().begin(), normal.values().end());
  const std::size_t n = values.size();

  std::vector<std::uint8_t> occupied(n, 0);
  ts::LabelSet labels;
  std::vector<InjectedAnomaly> anomalies;

  const std::size_t target = static_cast<std::size_t>(
      spec.anomaly_fraction * static_cast<double>(n));
  std::size_t labeled = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (target + 1);

  const std::size_t regime_points =
      spec.regime_weeks * normal.points_per_week();

  while (labeled < target && attempts < max_attempts) {
    ++attempts;

    // Position first, so regimes (which are positional) can bias the kind
    // and magnitude of the anomaly planted there.
    const std::size_t anchor = rng.uniform_int(n);

    std::vector<double> weights = spec.kind_weights;
    double regime_mag_lo = spec.min_magnitude;
    double regime_mag_hi = spec.max_magnitude;
    if (regime_points > 0) {
      // Derive the regime's dominant kind deterministically from the
      // regime index.
      const std::size_t regime = anchor / regime_points;
      util::Rng regime_rng(spec.seed ^ (0x51ED2701ULL + regime * 0x9E37ULL));
      const AnomalyKind dominant = pick_kind(regime_rng, spec.kind_weights);
      weights[static_cast<std::size_t>(dominant)] *= 6.0;
      // The magnitude band's position follows a bounded random walk over
      // regimes: anomaly severity drifts slowly, so neighbouring weeks
      // need similar cThlds while distant weeks do not (the Fig 7 / §4.5.2
      // phenomenon that makes EWMA prediction beat a global average).
      util::Rng walk_rng(spec.seed ^ 0xAB5EED17ULL);
      double pos = walk_rng.uniform();
      for (std::size_t r = 0; r < regime; ++r) {
        pos += walk_rng.uniform(-0.4, 0.4);
        if (pos < 0.0) pos = -pos;            // reflect into [0, 1]
        if (pos > 1.0) pos = 2.0 - pos;
      }
      const double band = 0.35 * (spec.max_magnitude - spec.min_magnitude);
      regime_mag_lo =
          spec.min_magnitude +
          pos * (spec.max_magnitude - spec.min_magnitude - band);
      regime_mag_hi = regime_mag_lo + band;
      // Anomaly density also drifts with the walk: incident-heavy months
      // cluster, so neighbouring weeks have similar anomaly rates.
      const double density = 0.3 + 0.7 * pos;
      if (rng.uniform() > density) continue;
    }
    // Kinds that phase in later cannot occur before their phase-in point.
    for (std::size_t k = 0; k < spec.kind_phase_in.size() && k < weights.size();
         ++k) {
      if (static_cast<double>(anchor) <
          spec.kind_phase_in[k] * static_cast<double>(n)) {
        weights[k] = 0.0;
      }
    }
    if (std::accumulate(weights.begin(), weights.end(), 0.0) <= 0.0) {
      continue;  // no kind may occur this early in the series
    }
    const AnomalyKind kind = pick_kind(rng, weights);

    std::size_t len;
    if (is_short(kind)) {
      len = 1 + rng.uniform_int(spec.short_max_points);
    } else {
      len = spec.long_min_points +
            rng.uniform_int(spec.long_max_points - spec.long_min_points + 1);
    }
    len = std::min(len, target - labeled + spec.short_max_points);
    if (len == 0 || len >= n) continue;
    if (anchor + len > n) continue;
    const std::size_t begin = anchor;

    // Keep a 1-point gap between windows so ground-truth windows stay
    // distinct after operator boundary noise.
    const std::size_t guard_begin = begin > 0 ? begin - 1 : 0;
    const std::size_t guard_end = std::min(begin + len + 1, n);
    bool clash = false;
    for (std::size_t i = guard_begin; i < guard_end && !clash; ++i) {
      clash = occupied[i] != 0;
    }
    if (clash) continue;

    double magnitude = rng.uniform(regime_mag_lo, regime_mag_hi);
    if (kind == AnomalyKind::kLevelShift && spec.allow_downward_shift &&
        rng.uniform() < 0.5) {
      magnitude = -std::min(magnitude, 0.9);  // downward shift, keep v > 0
    }
    const ts::LabelWindow window{begin, begin + len};
    apply(kind, window, magnitude, rng, values);
    for (std::size_t i = guard_begin; i < guard_end; ++i) occupied[i] = 1;
    labels.add_window(window);
    anomalies.push_back({kind, window, magnitude});
    labeled += len;
  }

  if (spec.missing_fraction > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!labels.is_anomalous(i) && rng.uniform() < spec.missing_fraction) {
        values[i] = kNaN;
      }
    }
  }

  std::sort(anomalies.begin(), anomalies.end(),
            [](const InjectedAnomaly& a, const InjectedAnomaly& b) {
              return a.window.begin < b.window.begin;
            });

  return GeneratedKpi{
      ts::TimeSeries(normal.name(), normal.start_epoch(),
                     normal.interval_seconds(), std::move(values)),
      std::move(labels), std::move(anomalies)};
}

GeneratedKpi generate_kpi(const KpiModel& model, const InjectionSpec& spec) {
  if (!model.integer_counts) {
    return inject_anomalies(generate_normal(model), spec);
  }
  // Count KPIs: anomalies scale the event *intensity*, then the counts are
  // sampled — an incident multiplies the rate of slow responses, it does
  // not multiply an already-observed count (a 0-count bin would otherwise
  // hide the anomaly entirely).
  KpiModel intensity_model = model;
  intensity_model.integer_counts = false;
  GeneratedKpi kpi =
      inject_anomalies(generate_normal(intensity_model), spec);
  util::Rng rng(model.seed ^ 0xC0FFEEULL);
  for (auto& v : kpi.series.mutable_values()) {
    if (!std::isnan(v)) v = static_cast<double>(rng.poisson(v));
  }
  return kpi;
}

}  // namespace opprentice::datagen
