// Ready-made KPI presets reproducing Table 1 of the paper.
//
// | KPI  | Interval | Length   | Seasonality | Cv   | anomaly ratio |
// | PV   | 1 min    | 25 weeks | Strong      | 0.48 | 7.8%          |
// | #SR  | 1 min    | 19 weeks | Weak        | 2.1  | 2.8%          |
// | SRT  | 60 min   | 16 weeks | Moderate    | 0.07 | 7.4%          |
//
// The evaluation host is single-core, so the default scale uses 10-minute
// bins for PV/#SR (same number of weeks); Scale::kPaper restores 1-minute
// bins. All statistics other than point count are preserved at both scales.
#pragma once

#include "datagen/anomaly_injector.hpp"
#include "datagen/kpi_model.hpp"

namespace opprentice::datagen {

enum class Scale {
  kSmall,  // 10-minute bins for the minute-level KPIs (default)
  kPaper,  // 1-minute bins, as in the paper
};

// Reads OPPRENTICE_SCALE ("small" / "paper"); defaults to kSmall.
Scale scale_from_env();

struct KpiPreset {
  KpiModel model;
  InjectionSpec injection;
};

// PV: search page views. Strongly seasonal, moderate dispersion; anomalies
// are mostly seasonal-pattern violations (dips/spikes/ramps vs the
// template), which favours the TSD/historical family (Fig 9a).
KpiPreset pv_preset(Scale scale = Scale::kSmall, std::uint64_t seed = 11);

// #SR: number of slow responses. A spiky, weakly seasonal count series with
// Cv ~ 2.1; anomalies are extreme absolute bursts, which favours the simple
// threshold detector (Fig 9b).
KpiPreset sr_preset(Scale scale = Scale::kSmall, std::uint64_t seed = 22);

// SRT: 80th-percentile search response time. Tight dispersion (Cv ~ 0.07),
// moderate seasonality; anomalies are small shifts/jitters, which favours
// SVD/TSD-MAD (Fig 9c).
KpiPreset srt_preset(Scale scale = Scale::kSmall, std::uint64_t seed = 33);

// All three presets in paper order (PV, #SR, SRT).
std::vector<KpiPreset> all_presets(Scale scale = Scale::kSmall);

}  // namespace opprentice::datagen
