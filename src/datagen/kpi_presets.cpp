#include "datagen/kpi_presets.hpp"

#include <cstdlib>
#include <string>

namespace opprentice::datagen {

Scale scale_from_env() {
  const char* env = std::getenv("OPPRENTICE_SCALE");
  if (env != nullptr && std::string(env) == "paper") return Scale::kPaper;
  return Scale::kSmall;
}

KpiPreset pv_preset(Scale scale, std::uint64_t seed) {
  KpiPreset p;
  p.model.name = "PV";
  p.model.interval_seconds = scale == Scale::kPaper ? 60 : 600;
  p.model.weeks = 25;
  p.model.base_level = 100000.0;
  p.model.daily_amplitude = 0.78;   // strong daily seasonality, Cv ~ 0.48
  p.model.weekly_amplitude = 0.12;
  p.model.noise_level = 0.025;
  p.model.noise_memory = 0.6;
  p.model.noise_wander = 0.55;  // noisy months vs quiet months
  p.model.trend = 0.05;
  p.model.seed = seed;

  p.injection.anomaly_fraction = 0.078;
  // Seasonal-violation mix: dips and ramps dominate (query loss events).
  p.injection.kind_weights = {1.0, 1.6, 0.8, 0.8, 0.6, 0.6};
  // Jitters and level shifts only emerge after the initial 8-week
  // training set (32% of 25 weeks) — new anomaly types over time, §3.2.
  p.injection.kind_phase_in = {0, 0, 0, 0, 0.35, 0.5};
  p.injection.regime_weeks = 3;
  p.injection.min_magnitude = 0.2;
  p.injection.max_magnitude = 0.6;
  p.injection.long_max_points = 24;
  p.injection.seed = seed * 1000 + 1;
  return p;
}

KpiPreset sr_preset(Scale scale, std::uint64_t seed) {
  KpiPreset p;
  p.model.name = "#SR";
  p.model.interval_seconds = scale == Scale::kPaper ? 60 : 600;
  p.model.weeks = 19;
  p.model.base_level = 8.0;  // slow responses are a sparse count
  p.model.integer_counts = true;
  p.model.daily_amplitude = 0.15;  // weak seasonality
  p.model.weekly_amplitude = 0.05;
  p.model.noise_level = 0.6;       // widely dispersed count series
  p.model.noise_memory = 0.3;
  p.model.noise_wander = 0.45;
  p.model.burst_probability = 0.012;
  p.model.burst_magnitude = 3.0;   // benign bursts push Cv towards ~2
  p.model.seed = seed;

  p.injection.anomaly_fraction = 0.028;
  // Anomalies are extreme sustained bursts well above the benign spikes,
  // so a static value threshold separates them well (the paper's best
  // basic detector for #SR is the simple threshold). Only upward events
  // are anomalous for a count of slow responses.
  p.injection.kind_weights = {2.0, 0.0, 0.3, 0.0, 0.3, 1.2};
  p.injection.min_magnitude = 14.0;
  p.injection.max_magnitude = 30.0;
  p.injection.allow_downward_shift = false;
  p.injection.regime_weeks = 3;
  p.injection.short_max_points = 4;
  p.injection.long_min_points = 6;
  p.injection.long_max_points = 25;
  p.injection.seed = seed * 1000 + 1;
  return p;
}

KpiPreset srt_preset(Scale scale, std::uint64_t seed) {
  KpiPreset p;
  (void)scale;  // SRT is hourly in the paper already
  p.model.name = "SRT";
  p.model.interval_seconds = 3600;
  p.model.weeks = 16;
  p.model.base_level = 350.0;
  p.model.daily_amplitude = 0.16;  // moderate seasonality, Cv ~ 0.07
  p.model.weekly_amplitude = 0.02;
  p.model.noise_level = 0.02;
  p.model.noise_memory = 0.5;
  p.model.noise_wander = 0.5;
  p.model.seed = seed;

  p.injection.anomaly_fraction = 0.074;
  // Latency regressions: small spikes, ramps, and level shifts.
  p.injection.kind_weights = {1.5, 0.3, 0.8, 0.3, 0.5, 1.2};
  // Sustained level shifts only appear in the second half (new anomaly
  // types over time); 8 of 16 weeks form the initial training set.
  p.injection.kind_phase_in = {0, 0, 0, 0, 0.55, 0.55};
  p.injection.regime_weeks = 3;
  p.injection.min_magnitude = 0.12;
  p.injection.max_magnitude = 0.4;
  p.injection.short_max_points = 3;
  p.injection.long_min_points = 3;
  p.injection.long_max_points = 9;
  p.injection.seed = seed * 1000 + 1;
  return p;
}

std::vector<KpiPreset> all_presets(Scale scale) {
  return {pv_preset(scale), sr_preset(scale), srt_preset(scale)};
}

}  // namespace opprentice::datagen
