#include "combiners/static_combiners.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace opprentice::combiners {

std::vector<double> StaticCombiner::score_all(const ml::Dataset& data) const {
  std::vector<double> scores(data.num_rows());
  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    for (std::size_t f = 0; f < data.num_features(); ++f) {
      row[f] = data.value(i, f);
    }
    scores[i] = score(row);
  }
  return scores;
}

void NormalizationScheme::fit(const ml::Dataset& training) {
  const std::size_t nf = training.num_features();
  low_.resize(nf);
  inv_range_.resize(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    // Min-max normalization against the training distribution, as in the
    // cited scheme. The training maximum is typically set by the historical
    // anomalies themselves, which is exactly why this static combination
    // underperforms in the paper.
    const double lo = util::min_value(training.column(f));
    const double hi = util::max_value(training.column(f));
    low_[f] = std::isnan(lo) ? 0.0 : lo;
    const double range = (std::isnan(hi) ? 0.0 : hi) - low_[f];
    inv_range_[f] = range > 1e-12 ? 1.0 / range : 0.0;
  }
}

double NormalizationScheme::score(std::span<const double> severities) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t f = 0; f < severities.size() && f < low_.size(); ++f) {
    if (std::isnan(severities[f])) continue;
    const double v =
        std::clamp((severities[f] - low_[f]) * inv_range_[f], 0.0, 1.0);
    sum += v;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

void MajorityVote::fit(const ml::Dataset& training) {
  const std::size_t nf = training.num_features();
  sthlds_.resize(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    const double m = util::mean(training.column(f));
    const double sd = util::stddev(training.column(f));
    sthlds_[f] = (std::isnan(m) ? 0.0 : m) +
                 sigma_multiplier_ * (std::isnan(sd) ? 0.0 : sd);
  }
}

double MajorityVote::score(std::span<const double> severities) const {
  std::size_t votes = 0;
  std::size_t n = 0;
  for (std::size_t f = 0; f < severities.size() && f < sthlds_.size(); ++f) {
    if (std::isnan(severities[f])) continue;
    ++n;
    if (severities[f] > sthlds_[f]) ++votes;
  }
  return n == 0 ? 0.0 : static_cast<double>(votes) / static_cast<double>(n);
}

}  // namespace opprentice::combiners
