// Static detector-combination baselines (§5.3.1).
//
// Both combine the 133 configurations while treating them equally — no
// learning, no per-detector weighting — which is exactly why the paper
// shows them ranking low: inaccurate configurations drag them down.
//
//  - Normalization scheme [Shanbhag & Wolf, IEEE Network'09]: each
//    configuration's severity is normalized to [0, 1] against its own
//    training distribution, and the combined score is the mean.
//  - Majority vote [Fontugne et al. (MAWILab), CoNEXT'10]: each
//    configuration votes via its own 3-sigma severity threshold; the
//    combined score is the fraction of voting configurations.
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace opprentice::combiners {

// Common interface: fit per-configuration statistics on training
// severities, then map a severity row to a combined anomaly score in
// [0, 1]. Labels in the dataset are ignored — these baselines do not learn.
class StaticCombiner {
 public:
  virtual ~StaticCombiner() = default;
  virtual std::string name() const = 0;
  virtual void fit(const ml::Dataset& training) = 0;
  virtual bool is_fitted() const = 0;
  virtual double score(std::span<const double> severities) const = 0;

  std::vector<double> score_all(const ml::Dataset& data) const;
};

class NormalizationScheme final : public StaticCombiner {
 public:
  std::string name() const override { return "normalization_scheme"; }
  void fit(const ml::Dataset& training) override;
  bool is_fitted() const override { return !inv_range_.empty(); }
  double score(std::span<const double> severities) const override;

 private:
  // Per-configuration robust range: [q01, q99] of training severities.
  std::vector<double> low_;
  std::vector<double> inv_range_;
};

class MajorityVote final : public StaticCombiner {
 public:
  explicit MajorityVote(double sigma_multiplier = 3.0)
      : sigma_multiplier_(sigma_multiplier) {}

  std::string name() const override { return "majority_vote"; }
  void fit(const ml::Dataset& training) override;
  bool is_fitted() const override { return !sthlds_.empty(); }
  double score(std::span<const double> severities) const override;

 private:
  double sigma_multiplier_ = 3.0;
  std::vector<double> sthlds_;  // per-configuration severity thresholds
};

}  // namespace opprentice::combiners
