#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace opprentice::util {

std::string render_line_chart(std::span<const double> ys,
                              const ChartOptions& options) {
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  if (ys.empty()) return out.str();

  const double lo = min_value(ys);
  const double hi = max_value(ys);
  if (std::isnan(lo)) {
    out << "(all values missing)\n";
    return out.str();
  }
  const double span = hi > lo ? hi - lo : 1.0;
  const std::size_t w = std::max<std::size_t>(options.width, 8);
  const std::size_t h = std::max<std::size_t>(options.height, 2);

  std::vector<std::string> grid(h, std::string(w, ' '));
  for (std::size_t col = 0; col < w; ++col) {
    // Average the bucket of samples that maps to this column.
    const std::size_t begin = col * ys.size() / w;
    const std::size_t end =
        std::max(begin + 1, (col + 1) * ys.size() / w);
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = begin; i < end && i < ys.size(); ++i) {
      if (!is_missing(ys[i])) {
        sum += ys[i];
        ++n;
      }
    }
    if (n == 0) continue;
    const double v = sum / static_cast<double>(n);
    const double frac = (v - lo) / span;
    const std::size_t row =
        h - 1 - std::min<std::size_t>(static_cast<std::size_t>(
                    frac * static_cast<double>(h - 1) + 0.5),
                h - 1);
    grid[row][col] = '*';
  }
  out << format_double(hi, 4) << '\n';
  for (const auto& row : grid) out << '|' << row << '\n';
  out << '+' << std::string(w, '-') << '\n';
  out << format_double(lo, 4) << '\n';
  return out.str();
}

std::string render_sparkline(std::span<const double> ys) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  const double lo = min_value(ys);
  const double hi = max_value(ys);
  std::string out;
  if (std::isnan(lo)) return out;
  const double span = hi > lo ? hi - lo : 1.0;
  for (double y : ys) {
    if (is_missing(y)) {
      out += ' ';
      continue;
    }
    const int level = std::clamp(
        static_cast<int>((y - lo) / span * 7.0 + 0.5), 0, 7);
    out += kLevels[level];
  }
  return out;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < header.size() && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(header);
  for (std::size_t c = 0; c < header.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows) emit_row(row);
  return out.str();
}

std::string format_double(double v, int precision) {
  if (std::isnan(v)) return "nan";
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

}  // namespace opprentice::util
