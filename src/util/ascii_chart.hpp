// ASCII rendering helpers so bench binaries can print paper-style figures
// (line charts, sparkline series, aligned tables) to a terminal.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace opprentice::util {

struct ChartOptions {
  std::size_t width = 78;
  std::size_t height = 16;
  std::string title;
};

// Renders one series as a multi-row ASCII line chart (NaN gaps are blank).
std::string render_line_chart(std::span<const double> ys,
                              const ChartOptions& options = {});

// One-row unicode sparkline; handy for per-week summaries.
std::string render_sparkline(std::span<const double> ys);

// Renders a right-padded text table; `rows` must all have `header.size()`
// cells (shorter rows are padded with empty cells).
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

// Formats a double with the given precision ("nan" for missing).
std::string format_double(double v, int precision = 3);

}  // namespace opprentice::util
