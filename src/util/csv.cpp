#include "util/csv.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace opprentice::util {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

// Parses one cell or throws with the 1-based line (header = line 1),
// 1-based column, and column name, so a malformed export is locatable.
double parse_cell(const std::string& raw_cell, std::size_t line_number,
                  std::size_t column_number, const std::string& column_name) {
  const std::string cell = trim(raw_cell);
  if (cell.empty() || cell == "nan" || cell == "NaN") return kNaN;
  try {
    std::size_t pos = 0;
    const double v = std::stod(cell, &pos);
    // Reject trailing garbage ("1.5x", "3;4") that stod would silently
    // accept a prefix of.
    if (pos != cell.size()) throw std::invalid_argument(cell);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(
        "CSV line " + std::to_string(line_number) + ", column " +
        std::to_string(column_number) + " ('" + column_name +
        "'): cannot parse '" + cell + "' as a number");
  }
}

}  // namespace

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = column_index(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    out.push_back(idx < row.size() ? row[idx] : kNaN);
  }
  return out;
}

CsvTable read_csv(std::istream& in) {
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) return table;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  table.columns = split_line(line);
  std::size_t line_number = 1;  // the header
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto cells = split_line(line);
    // A short or long row means the export is structurally broken; a
    // silent misparse here shifts every later column, so fail loudly.
    if (cells.size() != table.columns.size()) {
      throw std::runtime_error(
          "CSV line " + std::to_string(line_number) + ": expected " +
          std::to_string(table.columns.size()) + " cells, got " +
          std::to_string(cells.size()));
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      row.push_back(parse_cell(cells[c], line_number, c + 1,
                               table.columns[c]));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  try {
    return read_csv(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_csv(std::ostream& out, const CsvTable& table) {
  for (std::size_t i = 0; i < table.columns.size(); ++i) {
    if (i > 0) out << ',';
    out << table.columns[i];
  }
  out << '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      if (std::isnan(row[i])) {
        out << "nan";
      } else {
        out << row[i];
      }
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(out, table);
}

}  // namespace opprentice::util
