#include "util/csv.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace opprentice::util {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

double parse_cell(const std::string& cell) {
  if (cell.empty() || cell == "nan" || cell == "NaN") return kNaN;
  std::size_t pos = 0;
  const double v = std::stod(cell, &pos);
  return v;
}

}  // namespace

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = column_index(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    out.push_back(idx < row.size() ? row[idx] : kNaN);
  }
  return out;
}

CsvTable read_csv(std::istream& in) {
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) return table;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  table.columns = split_line(line);
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto cells = split_line(line);
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& cell : cells) row.push_back(parse_cell(cell));
    table.rows.push_back(std::move(row));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(in);
}

void write_csv(std::ostream& out, const CsvTable& table) {
  for (std::size_t i = 0; i < table.columns.size(); ++i) {
    if (i > 0) out << ',';
    out << table.columns[i];
  }
  out << '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      if (std::isnan(row[i])) {
        out << "nan";
      } else {
        out << row[i];
      }
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(out, table);
}

}  // namespace opprentice::util
