// Deterministic fault injection (DESIGN.md §5f).
//
// Production KPI pipelines must degrade gracefully: a gap in the ingest
// stream, a detector configuration that throws on a degenerate window, or
// a forest training round that fails must not take down the weekly driver.
// This harness drives the chaos tests that prove it: named injection
// points in ingest, detector severity evaluation, and forest training
// fire *deterministically* from a seeded plan — never from wall clock or
// ambient entropy — so a faulted run is exactly reproducible and
// bit-identical at any thread count.
//
// A decision is a pure function of (plan seed, site name, caller key):
// there are no per-site counters whose interleaving could differ across
// thread schedules. Callers pick keys that identify the logical unit of
// work (point index, configuration×point, training-window bounds).
//
// Activation:
//   OPPRENTICE_FAULTS="seed=7,detector.throw=0.02,ingest.nan=0.01"  (env)
//   opprentice_cli <cmd> --faults "seed=7,detector.throw=0.02"      (CLI)
//   util::set_fault_plan(plan)                                      (tests)
//
// With no plan installed every query returns false after one relaxed
// atomic load — zero-fault runs are byte-identical to a build without
// the harness.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace opprentice::util {

// Named injection points. Each fires in exactly one place; the catalog
// below is what parse_fault_spec validates against and what DESIGN.md
// §5f documents.
namespace faults {
inline constexpr std::string_view kIngestGap = "ingest.gap";
inline constexpr std::string_view kIngestDuplicate = "ingest.duplicate";
inline constexpr std::string_view kIngestDisorder = "ingest.disorder";
inline constexpr std::string_view kIngestNan = "ingest.nan";
inline constexpr std::string_view kDetectorThrow = "detector.throw";
inline constexpr std::string_view kDetectorNan = "detector.nan";
inline constexpr std::string_view kForestTrain = "forest.train";
// Wire-level sites for the ingestion daemon (src/net, DESIGN.md §5k).
// The frame sites fire at the sender's frame boundary (net::
// FrameFaultInjector), keyed by (source salt, frame index); the
// connection sites fire inside net::IngestServer.
inline constexpr std::string_view kNetFrameCorrupt = "net.frame_corrupt";
inline constexpr std::string_view kNetFrameDrop = "net.frame_drop";
inline constexpr std::string_view kNetFrameDuplicate = "net.frame_duplicate";
inline constexpr std::string_view kNetFrameReorder = "net.frame_reorder";
inline constexpr std::string_view kNetConnReset = "net.conn_reset";
inline constexpr std::string_view kNetAcceptFail = "net.accept_fail";
}  // namespace faults

// Every valid site name, in documentation order.
const std::vector<std::string>& fault_sites();

// Thrown by injected "throw" sites so chaos tests can tell an injected
// fault from a genuine detector/training failure when they need to.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  // site -> firing probability in [0, 1].
  std::map<std::string, double, std::less<>> rates;
};

// Parses "seed=N,site=rate,..." (comma- or semicolon-separated). Throws
// std::invalid_argument on unknown sites, rates outside [0, 1], or
// malformed numbers.
FaultPlan parse_fault_spec(std::string_view spec);

// Installs / removes the process-wide plan. Reconfigure only while no
// parallel work is in flight (CLI mains and test setup do).
void set_fault_plan(const FaultPlan& plan);
void clear_fault_plan();

// True when a plan with at least one positive rate is active. The first
// query lazily installs a plan from OPPRENTICE_FAULTS if one is set and
// no plan was installed programmatically.
bool faults_enabled();

// Pure decision: for a fixed plan, the same (site, key) always answers
// the same. False when no plan is active or the site has no rate.
bool fault_fires(std::string_view site, std::uint64_t key);

// fault_fires plus accounting: bumps opprentice.faults.injected and
// opprentice.faults.<site> when it fires.
bool inject_fault(std::string_view site, std::uint64_t key);

// Mixes two indices into one injection key (e.g. configuration × point).
std::uint64_t fault_key(std::uint64_t a, std::uint64_t b);

// Deterministic 64-bit hash of an identifier string (FNV-1a finalized
// through splitmix64). The fleet engine uses it to derive per-series
// fault-key salts and registry shard indices: equal ids hash equal in
// every process, so faulted fleet runs replay exactly.
std::uint64_t stable_id_hash(std::string_view id);

}  // namespace opprentice::util
