// Deterministic pseudo-random number generation for Opprentice.
//
// All stochastic components of the library (data generation, label noise,
// bootstrap sampling, feature sub-sampling, ...) draw from an explicitly
// seeded Rng so that every experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace opprentice::util {

// xoshiro256** by Blackman & Vigna: small state, excellent statistical
// quality, and trivially seedable from a single 64-bit value via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  // Re-initializes the full state from a single 64-bit seed.
  void reseed(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // Standard normal via Marsaglia polar method.
  double normal();

  // Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  // Poisson-distributed count (Knuth for small lambda, normal
  // approximation for large lambda). Requires lambda >= 0.
  std::uint64_t poisson(double lambda);

  // Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Derives an independent child generator; useful to give each
  // subcomponent its own stream.
  Rng split();

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace opprentice::util
