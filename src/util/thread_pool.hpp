// Deterministic parallel execution for the hot paths (see DESIGN.md
// "Parallel execution").
//
// A fixed-size worker pool exposing one primitive, parallel_for(n, body):
// body(i) runs exactly once for every i in [0, n), possibly concurrently,
// and the call returns only when all indices finished. Work *assignment*
// is dynamic (an atomic chunk cursor), so the pool is only deterministic
// for loops whose iterations are independent — each index must read
// shared state immutably and write only its own output slot. All call
// sites in this codebase follow that contract, which is what makes
// extraction, forest training, and cThld selection bit-identical at any
// thread count (locked in by tests/parallel_equivalence_test.cpp).
//
// Semantics:
//  - thread_count() == 1 (or OPPRENTICE_THREADS=1) is an exact serial
//    fallback: no worker threads exist and body runs inline on the caller.
//  - Every index is attempted even when some throw; the exception raised
//    by the *lowest* index propagates to the caller (deterministic at any
//    thread count). Others are discarded.
//  - A parallel_for issued from inside a pool task runs inline serially
//    on the current thread, so nesting can never deadlock and never
//    oversubscribes (forest training inside a five-fold fold, say).
//  - Concurrent parallel_for calls from different user threads are
//    serialized against each other; each still completes all its indices.
//
// The pool's internal locking uses the annotated util::Mutex types
// (util/mutex.hpp); shared fields carry GUARDED_BY and are statically
// checked under OPPRENTICE_THREAD_SAFETY (DESIGN.md §5e).
#pragma once

#include <cstddef>
#include <functional>
#include <string_view>

namespace opprentice::util {

// Parses an OPPRENTICE_THREADS-style spec: "" or "0" mean hardware
// concurrency, a positive integer is taken literally (1 = serial), and
// anything unparsable degrades to 1 (serial — the conservative choice).
std::size_t resolve_thread_count(std::string_view spec);

class ThreadPool {
 public:
  // Parallelism degree: `threads` concurrent lanes including the calling
  // thread, so `threads - 1` workers are spawned. 0 = hardware
  // concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  // Runs body(i) for every i in [0, n). Indices are dispatched in chunks
  // of `grain` consecutive indices per task; raise it when body is tiny
  // relative to the dispatch cost (one atomic op per chunk).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  // True on a thread currently executing pool work (including the caller
  // while it participates in its own parallel_for).
  static bool in_pool_task();

 private:
  struct Job;

  void worker_loop();
  // Grabs and runs chunks until the job is exhausted.
  void execute(Job& job);
  // Serial inline path shared by the threads==1 pool and nested calls.
  static void run_inline(Job& job);

  struct Impl;
  Impl* impl_;
  std::size_t threads_;
};

// ---- Process-wide pool used by the library's parallel paths ----

// Lazily built on first use with OPPRENTICE_THREADS (hardware concurrency
// when unset). The reference stays valid until the next set_global_threads
// call; reconfigure only from a single thread while no parallel work runs
// (the CLI/bench/test mains do it at startup).
ThreadPool& global_pool();

// Rebuilds the global pool with the given degree (0 = hardware).
void set_global_threads(std::size_t threads);

// Rebuilds the global pool from the current OPPRENTICE_THREADS value.
void set_global_threads_from_env();

std::size_t global_thread_count();

// Shorthand: global_pool().parallel_for(...).
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace opprentice::util
