#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace opprentice::util {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<double> present_values(std::span<const double> xs) {
  std::vector<double> v;
  v.reserve(xs.size());
  for (double x : xs) {
    if (!is_missing(x)) v.push_back(x);
  }
  return v;
}

}  // namespace

bool is_missing(double x) {
  return std::isnan(x);
}

std::size_t count_present(std::span<const double> xs) {
  std::size_t n = 0;
  for (double x : xs) {
    if (!is_missing(x)) ++n;
  }
  return n;
}

double mean(std::span<const double> xs) {
  double sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (!is_missing(x)) {
      sum += x;
      ++n;
    }
  }
  return n == 0 ? kNaN : sum / static_cast<double>(n);
}

double variance(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.count() == 0 ? kNaN : rs.variance();
}

double stddev(std::span<const double> xs) {
  const double v = variance(xs);
  return is_missing(v) ? kNaN : std::sqrt(v);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> v = present_values(xs);
  if (v.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(lo),
                   v.end());
  const double xlo = v[lo];
  if (hi == lo) return xlo;
  const double xhi =
      *std::min_element(v.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                        v.end());
  return xlo + (pos - static_cast<double>(lo)) * (xhi - xlo);
}

double median(std::span<const double> xs) {
  return quantile(xs, 0.5);
}

double mad(std::span<const double> xs) {
  const double med = median(xs);
  if (is_missing(med)) return kNaN;
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) {
    if (!is_missing(x)) dev.push_back(std::abs(x - med));
  }
  const double raw = median(dev);
  // 1.4826 makes MAD a consistent estimator of sigma under Gaussian data.
  return is_missing(raw) ? kNaN : 1.4826 * raw;
}

double min_value(std::span<const double> xs) {
  double best = kNaN;
  for (double x : xs) {
    if (is_missing(x)) continue;
    if (is_missing(best) || x < best) best = x;
  }
  return best;
}

double max_value(std::span<const double> xs) {
  double best = kNaN;
  for (double x : xs) {
    if (is_missing(x)) continue;
    if (is_missing(best) || x > best) best = x;
  }
  return best;
}

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  const double s = stddev(xs);
  if (is_missing(m) || is_missing(s) || m == 0.0) return kNaN;
  return s / m;
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (lag == 0 || lag >= xs.size()) return kNaN;
  const double m = mean(xs);
  if (is_missing(m)) return kNaN;
  double num = 0.0, den_a = 0.0, den_b = 0.0;
  std::size_t pairs = 0;
  for (std::size_t t = 0; t + lag < xs.size(); ++t) {
    const double a = xs[t], b = xs[t + lag];
    if (is_missing(a) || is_missing(b)) continue;
    num += (a - m) * (b - m);
    den_a += (a - m) * (a - m);
    den_b += (b - m) * (b - m);
    ++pairs;
  }
  if (pairs == 0 || den_a == 0.0 || den_b == 0.0) return kNaN;
  return num / std::sqrt(den_a * den_b);
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  double sum = 0.0, wsum = 0.0;
  const std::size_t n = std::min(xs.size(), ws.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (is_missing(xs[i])) continue;
    sum += ws[i] * xs[i];
    wsum += ws[i];
  }
  return wsum == 0.0 ? kNaN : sum / wsum;
}

void RunningStats::add(double x) {
  if (is_missing(x)) return;
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  return n_ == 0 ? kNaN : mean_;
}

double RunningStats::variance() const {
  return n_ == 0 ? kNaN : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const {
  const double v = variance();
  return std::isnan(v) ? v : std::sqrt(v);
}

}  // namespace opprentice::util
