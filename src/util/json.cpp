#include "util/json.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace opprentice::util::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + '\'');
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Type::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Type::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.object.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Type::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the code point (our emitters only escape
          // control characters, so surrogate pairs are not handled).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool number_char = (c >= '0' && c <= '9') || c == '-' ||
                               c == '+' || c == '.' || c == 'e' || c == 'E';
      if (!number_char) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    // strtod needs NUL termination; copy the slice (numbers are short).
    const std::string slice(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) {
      pos_ = start;
      fail("malformed number '" + slice + "'");
    }
    Value v;
    v.type = Type::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const Value* Value::find_path(std::string_view path) const {
  const Value* cur = this;
  while (cur != nullptr && !path.empty()) {
    const std::size_t dot = path.find('.');
    const std::string_view key =
        dot == std::string_view::npos ? path : path.substr(0, dot);
    path = dot == std::string_view::npos ? std::string_view{}
                                         : path.substr(dot + 1);
    cur = cur->find(key);
  }
  return cur;
}

double Value::number_at(std::string_view path, double fallback) const {
  const Value* v = find_path(path);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

bool Value::bool_at(std::string_view path, bool fallback) const {
  const Value* v = find_path(path);
  return v != nullptr && v->is_bool() ? v->boolean : fallback;
}

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

Value parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("json: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace opprentice::util::json
