// Tiny CSV reader/writer for KPI series and experiment output.
//
// Format: a header row of column names followed by numeric rows. Empty
// cells and the literal "nan" are read as NaN (missing KPI points).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace opprentice::util {

struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;

  std::size_t column_index(const std::string& name) const;  // throws if absent
  std::vector<double> column(const std::string& name) const;
};

CsvTable read_csv(std::istream& in);
CsvTable read_csv_file(const std::string& path);  // throws on open failure

void write_csv(std::ostream& out, const CsvTable& table);
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace opprentice::util
