// Annotated mutual-exclusion types for Clang Thread Safety Analysis
// (thread_annotations.hpp, DESIGN.md §5e).
//
// `util::Mutex` wraps std::mutex as a named capability and
// `util::MutexLock` is the scoped acquisition, so data members declared
// `OPPRENTICE_GUARDED_BY(mutex_)` are statically checked: touching them
// without the lock held fails the OPPRENTICE_THREAD_SAFETY build. Every
// lock-holding class in the tree (thread pool, metrics registry,
// trace collector, log sink) uses these types instead of raw
// std::mutex/std::lock_guard.
//
// `CondVar` pairs with Mutex for condition waits. It is built on
// std::condition_variable_any (Mutex is BasicLockable); the extra cost
// over condition_variable is irrelevant here because every wait in this
// codebase is an idle-path wait, never a hot-path one. Callers must hold
// the mutex (enforced by the analysis) and re-check their predicate in a
// loop — an explicit `while (!pred) cv.wait(mu);` rather than the
// predicate-lambda overload, so the analysis can see the guarded reads
// happen under the held capability.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace opprentice::util {

class OPPRENTICE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OPPRENTICE_ACQUIRE() { mu_.lock(); }
  void unlock() OPPRENTICE_RELEASE() { mu_.unlock(); }
  bool try_lock() OPPRENTICE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII scoped acquisition of a Mutex (the annotated std::lock_guard).
class OPPRENTICE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OPPRENTICE_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() OPPRENTICE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with util::Mutex. wait() atomically releases
// the mutex for the duration of the block and reacquires it before
// returning; the annotation requires the caller to already hold it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) OPPRENTICE_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace opprentice::util
