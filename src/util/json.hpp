// Minimal recursive-descent JSON parser for the repo's own machine
// outputs (bench --json envelopes, run reports, BENCH_history.jsonl).
//
// Deliberately small: parses the JSON our emitters (obs/json_util.hpp)
// produce plus standard escapes; numbers become double. Not a streaming
// parser and not tolerant of extensions (no comments, no trailing
// commas). Errors throw std::runtime_error with a byte offset so
// `opprentice_perf` can point at a corrupt bench file precisely.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace opprentice::util::json {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  // std::map keeps member iteration deterministic (sorted by key).
  std::map<std::string, Value, std::less<>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_bool() const { return type == Type::kBool; }

  // Member lookup on an object; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  // Dotted-path lookup ("sec58.extraction_us_per_point"); nullptr when
  // any hop is absent. Keys themselves must not contain '.'.
  const Value* find_path(std::string_view path) const;

  // Number at a dotted path, or `fallback` when absent / not a number.
  double number_at(std::string_view path, double fallback) const;
  // Bool at a dotted path, or `fallback` when absent / not a bool.
  bool bool_at(std::string_view path, bool fallback) const;
};

// Parses one complete JSON document (throws std::runtime_error on
// malformed input or trailing garbage).
Value parse(std::string_view text);

// Reads and parses a JSON file; throws std::runtime_error when the file
// cannot be read or does not parse.
Value parse_file(const std::string& path);

}  // namespace opprentice::util::json
