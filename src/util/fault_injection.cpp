#include "util/fault_injection.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace opprentice::util {
namespace {

// splitmix64: passes statistical tests, two multiplies and three xors —
// cheap enough to sit on the severity hot path behind the enabled check.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

// Installed plans are retired, never destroyed, so a hot-path reader that
// loaded the pointer just before a reconfigure still reads valid memory
// (same lifetime discipline as the metrics registry's instruments).
struct PlanStore {
  // opprentice-locks: level(fault_store)=30
  util::Mutex mutex;
  std::vector<std::unique_ptr<FaultPlan>> retired OPPRENTICE_GUARDED_BY(mutex);
  std::atomic<const FaultPlan*> active{nullptr};
};

PlanStore& plan_store() {
  // opprentice-check: allow(unguarded-static) Meyers singleton; the plan list is guarded by its own mutex and `active` is atomic
  static PlanStore store;
  return store;
}

// One-shot env activation: OPPRENTICE_FAULTS installs a plan the first
// time anything queries the harness, unless set_fault_plan ran first.
void ensure_env_plan_loaded() {
  static const bool loaded = [] {
    PlanStore& store = plan_store();
    if (store.active.load(std::memory_order_acquire) != nullptr) return true;
    const char* spec = std::getenv("OPPRENTICE_FAULTS");
    if (spec != nullptr && *spec != '\0') {
      set_fault_plan(parse_fault_spec(spec));
    }
    return true;
  }();
  (void)loaded;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const std::vector<std::string>& fault_sites() {
  static const std::vector<std::string> kSites = {
      std::string(faults::kIngestGap),     std::string(faults::kIngestDuplicate),
      std::string(faults::kIngestDisorder), std::string(faults::kIngestNan),
      std::string(faults::kDetectorThrow), std::string(faults::kDetectorNan),
      std::string(faults::kForestTrain),
      std::string(faults::kNetFrameCorrupt),
      std::string(faults::kNetFrameDrop),
      std::string(faults::kNetFrameDuplicate),
      std::string(faults::kNetFrameReorder),
      std::string(faults::kNetConnReset),
      std::string(faults::kNetAcceptFail),
  };
  return kSites;
}

FaultPlan parse_fault_spec(std::string_view spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t sep = rest.find_first_of(",;");
    const std::string_view piece = trim(rest.substr(0, sep));
    rest = sep == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sep + 1);
    if (piece.empty()) continue;
    const std::size_t eq = piece.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument(
          "fault spec entry '" + std::string(piece) +
          "' is not key=value (expected e.g. detector.throw=0.02)");
    }
    const std::string key(trim(piece.substr(0, eq)));
    const std::string value(trim(piece.substr(eq + 1)));
    if (key == "seed") {
      try {
        std::size_t pos = 0;
        plan.seed = std::stoull(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("fault spec seed '" + value +
                                    "' is not a non-negative integer");
      }
      continue;
    }
    bool known = false;
    for (const auto& site : fault_sites()) known = known || site == key;
    if (!known) {
      std::string sites;
      for (const auto& site : fault_sites()) {
        if (!sites.empty()) sites += ", ";
        sites += site;
      }
      throw std::invalid_argument("unknown fault site '" + key +
                                  "' (valid sites: " + sites + ")");
    }
    double rate = 0.0;
    try {
      std::size_t pos = 0;
      rate = std::stod(value, &pos);
      if (pos != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("fault rate '" + value + "' for site '" +
                                  key + "' is not a number");
    }
    if (!(rate >= 0.0 && rate <= 1.0)) {
      throw std::invalid_argument("fault rate for site '" + key +
                                  "' must be in [0, 1], got " + value);
    }
    plan.rates[key] = rate;
  }
  return plan;
}

void set_fault_plan(const FaultPlan& plan) {
  PlanStore& store = plan_store();
  auto owned = std::make_unique<FaultPlan>(plan);
  const FaultPlan* raw = owned.get();
  {
    util::MutexLock lock(store.mutex);
    store.retired.push_back(std::move(owned));
  }
  store.active.store(raw, std::memory_order_release);
}

void clear_fault_plan() {
  plan_store().active.store(nullptr, std::memory_order_release);
}

bool faults_enabled() {
  ensure_env_plan_loaded();
  const FaultPlan* plan =
      plan_store().active.load(std::memory_order_acquire);
  if (plan == nullptr) return false;
  for (const auto& [site, rate] : plan->rates) {
    if (rate > 0.0) return true;
  }
  return false;
}

bool fault_fires(std::string_view site, std::uint64_t key) {
  ensure_env_plan_loaded();
  const FaultPlan* plan =
      plan_store().active.load(std::memory_order_acquire);
  if (plan == nullptr) return false;
  const auto it = plan->rates.find(site);
  if (it == plan->rates.end() || it->second <= 0.0) return false;
  const std::uint64_t h =
      splitmix64(plan->seed ^ fnv1a(site) ^
                 (key * 0x9E3779B97F4A7C15ull));
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < it->second;
}

bool inject_fault(std::string_view site, std::uint64_t key) {
  if (!fault_fires(site, key)) return false;
  obs::counter("opprentice.faults.injected").add();
  std::string name = "opprentice.faults.";
  name += site;
  obs::counter(name).add();
  // Whether a fault fires is a pure hash of (seed, site, key), so the
  // fired-event set — and therefore the sorted flight dump — is identical
  // at any thread count (flight_recorder.hpp).
  obs::flight_record("fault", site, key, "");
  return true;
}

std::uint64_t fault_key(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ splitmix64(b));
}

std::uint64_t stable_id_hash(std::string_view id) {
  return splitmix64(fnv1a(id));
}

}  // namespace opprentice::util
