// Scalar statistics used across detectors, data generation, and evaluation.
//
// All functions skip NaN entries ("missing points" in KPI data) unless noted;
// when every entry is NaN (or the span is empty) they return NaN so callers
// can propagate missingness instead of silently inventing values.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace opprentice::util {

// True when x is NaN (we use NaN to encode missing KPI points).
bool is_missing(double x);

// Number of non-NaN entries.
std::size_t count_present(std::span<const double> xs);

double mean(std::span<const double> xs);

// Population variance (divides by the number of present values).
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

// q in [0,1]; linear interpolation between order statistics.
double quantile(std::span<const double> xs, double q);

double median(std::span<const double> xs);

// Median absolute deviation around the median, scaled by 1.4826 so it
// estimates the standard deviation for Gaussian data.
double mad(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

// Coefficient of variation: stddev / mean (Table 1's dispersion measure).
double coefficient_of_variation(std::span<const double> xs);

// Pearson autocorrelation of the series at the given positive lag,
// pairing x[t] with x[t+lag] for every t where both are present.
double autocorrelation(std::span<const double> xs, std::size_t lag);

// Weighted mean with the given non-negative weights (same length as xs).
double weighted_mean(std::span<const double> xs, std::span<const double> ws);

// Streaming mean/variance accumulator (Welford). NaN inputs are ignored.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace opprentice::util
