#include "util/wavelet.hpp"

#include <cmath>
#include <stdexcept>

namespace opprentice::util {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

bool is_pow2(std::size_t n) {
  return n >= 2 && (n & (n - 1)) == 0;
}

std::size_t levels_for(std::size_t n) {
  std::size_t levels = 0;
  while (n > 1) {
    n >>= 1;
    ++levels;
  }
  return levels;
}

}  // namespace

std::vector<double> haar_forward(std::span<const double> xs) {
  if (!is_pow2(xs.size())) {
    throw std::invalid_argument("haar_forward: size must be a power of two");
  }
  std::vector<double> work(xs.begin(), xs.end());
  std::vector<double> out(xs.size());
  std::size_t n = xs.size();
  // Each pass halves the working signal; details land at out[n/2 .. n).
  while (n > 1) {
    const std::size_t half = n / 2;
    for (std::size_t i = 0; i < half; ++i) {
      const double a = work[2 * i];
      const double b = work[2 * i + 1];
      out[half + i] = (a - b) * kInvSqrt2;  // detail
      work[i] = (a + b) * kInvSqrt2;        // approximation
    }
    n = half;
  }
  out[0] = work[0];
  return out;
}

std::vector<double> haar_inverse(std::span<const double> coeffs) {
  if (!is_pow2(coeffs.size())) {
    throw std::invalid_argument("haar_inverse: size must be a power of two");
  }
  std::vector<double> work(coeffs.begin(), coeffs.end());
  std::size_t n = 1;
  while (n < coeffs.size()) {
    std::vector<double> next(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const double approx = work[i];
      const double detail = work[n + i];
      next[2 * i] = (approx + detail) * kInvSqrt2;
      next[2 * i + 1] = (approx - detail) * kInvSqrt2;
    }
    for (std::size_t i = 0; i < 2 * n; ++i) work[i] = next[i];
    n *= 2;
  }
  return work;
}

std::vector<double> band_reconstruction(std::span<const double> xs,
                                        FrequencyBand band) {
  std::vector<double> coeffs = haar_forward(xs);
  const std::size_t levels = levels_for(xs.size());
  // Detail level l (1 = coarsest) occupies coeffs[2^(l-1) .. 2^l).
  // Split the levels into three contiguous groups.
  const std::size_t low_end = (levels + 2) / 3;        // coarsest third
  const std::size_t mid_end = low_end + (levels + 1) / 3;
  for (std::size_t l = 1; l <= levels; ++l) {
    FrequencyBand level_band = FrequencyBand::kHigh;
    if (l <= low_end) {
      level_band = FrequencyBand::kLow;
    } else if (l <= mid_end) {
      level_band = FrequencyBand::kMid;
    }
    if (level_band == band) continue;
    const std::size_t begin = std::size_t{1} << (l - 1);
    const std::size_t end = std::size_t{1} << l;
    for (std::size_t i = begin; i < end; ++i) coeffs[i] = 0.0;
  }
  // The DC approximation belongs to the low band.
  if (band != FrequencyBand::kLow) coeffs[0] = 0.0;
  return haar_inverse(coeffs);
}

std::size_t floor_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace opprentice::util
