#include "util/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace opprentice::util {
namespace {

// One-sided Jacobi works on the columns of a tall matrix; rotate pairs of
// columns until they are mutually orthogonal.
constexpr int kMaxSweeps = 60;
constexpr double kEps = 1e-12;

}  // namespace

SvdResult svd(const Matrix& a_in) {
  // Work on a tall copy; if the input is wide, decompose the transpose and
  // swap U and V at the end.
  const bool transposed = a_in.rows() < a_in.cols();
  Matrix a = transposed ? a_in.transposed() : a_in;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // V accumulates the column rotations.
  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += a(i, p) * a(i, p);
          beta += a(i, q) * a(i, q);
          gamma += a(i, p) * a(i, q);
        }
        if (std::abs(gamma) <= kEps * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double ap = a(i, p);
          const double aq = a(i, q);
          a(i, p) = c * ap - s * aq;
          a(i, q) = s * ap + c * aq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Column norms of the rotated A are the singular values.
  std::vector<double> sigma(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += a(i, j) * a(i, j);
    sigma[j] = std::sqrt(norm);
  }

  // Order components by descending singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  Matrix u(m, n);
  Matrix v_sorted(n, n);
  std::vector<double> s_sorted(n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    s_sorted[jj] = sigma[j];
    const double inv = sigma[j] > kEps ? 1.0 / sigma[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) u(i, jj) = a(i, j) * inv;
    for (std::size_t i = 0; i < n; ++i) v_sorted(i, jj) = v(i, j);
  }

  if (transposed) {
    return SvdResult{std::move(v_sorted), std::move(s_sorted), std::move(u)};
  }
  return SvdResult{std::move(u), std::move(s_sorted), std::move(v_sorted)};
}

Matrix low_rank_approximation(const Matrix& a, std::size_t rank) {
  SvdResult d = svd(a);
  const std::size_t k =
      std::min(rank, d.singular_values.size());
  Matrix out(a.rows(), a.cols());
  for (std::size_t comp = 0; comp < k; ++comp) {
    const double s = d.singular_values[comp];
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double us = d.u(i, comp) * s;
      if (us == 0.0) continue;
      for (std::size_t j = 0; j < a.cols(); ++j) {
        out(i, j) += us * d.v(j, comp);
      }
    }
  }
  return out;
}

}  // namespace opprentice::util
