#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace opprentice::util {
namespace {

// Set while the current thread executes pool work; makes nested
// parallel_for calls run inline instead of re-entering the pool.
thread_local bool t_in_pool_task = false;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

std::size_t resolve_thread_count(std::string_view spec) {
  if (spec.empty()) return hardware_threads();
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(spec.data(), spec.data() + spec.size(), value);
  if (ec != std::errc{} || ptr != spec.data() + spec.size()) return 1;
  return value == 0 ? hardware_threads() : value;
}

// One parallel_for in flight. Indices are handed out as chunks of `grain`
// via an atomic cursor; completion is a chunk countdown. The exception of
// the lowest throwing index wins, so error behavior is thread-count
// independent.
struct ThreadPool::Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> done_chunks{0};
  // Workers currently inside execute() on this job; the caller may not
  // destroy the job (return from parallel_for) until this drops to zero.
  std::atomic<std::size_t> active_workers{0};

  // opprentice-locks: level(pool_error)=70
  Mutex error_mutex;
  std::size_t error_index OPPRENTICE_GUARDED_BY(error_mutex) = 0;
  std::exception_ptr error OPPRENTICE_GUARDED_BY(error_mutex);

  void record_error(std::size_t index, std::exception_ptr e) {
    MutexLock lock(error_mutex);
    if (!error || index < error_index) {
      error = std::move(e);
      error_index = index;
    }
  }

  // Safe once no worker can still be recording (all chunks finished and
  // active_workers back to zero), which is when parallel_for calls it.
  std::exception_ptr take_error() {
    MutexLock lock(error_mutex);
    return error;
  }
};

struct ThreadPool::Impl {
  // opprentice-locks: level(pool_work)=60
  Mutex mutex;
  CondVar work_cv;   // workers wait for a job with work
  CondVar done_cv;   // caller waits for job completion
  Job* current_job OPPRENTICE_GUARDED_BY(mutex) = nullptr;
  bool stop OPPRENTICE_GUARDED_BY(mutex) = false;
  // Written only single-threaded in the constructor/destructor.
  std::vector<std::thread> workers;
  // Serializes parallel_for calls from distinct user threads.
  // opprentice-locks: level(pool_submit)=50
  Mutex submit_mutex;

  // Instruments (stable addresses; see obs/metrics.hpp).
  obs::Counter* tasks = nullptr;
  obs::Counter* dispatches = nullptr;
  obs::Counter* inline_runs = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Histogram* task_latency = nullptr;
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(new Impl),
      threads_(threads == 0 ? hardware_threads() : threads) {
  impl_->tasks = &obs::counter("opprentice.pool.tasks");
  impl_->dispatches = &obs::counter("opprentice.pool.dispatches");
  impl_->inline_runs = &obs::counter("opprentice.pool.inline_runs");
  impl_->queue_depth = &obs::gauge("opprentice.pool.queue_depth");
  impl_->task_latency = &obs::histogram("opprentice.pool.task.us");
  impl_->workers.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    impl_->workers.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

bool ThreadPool::in_pool_task() { return t_in_pool_task; }

void ThreadPool::run_inline(Job& job) {
  // Save/restore rather than set/clear: a nested inline run must not
  // strip the in-task flag from the enclosing pool task, or the next
  // nested call would try to dispatch and deadlock on submit_mutex.
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  for (std::size_t i = 0; i < job.n; ++i) {
    try {
      (*job.body)(i);
    } catch (...) {
      job.record_error(i, std::current_exception());
    }
  }
  t_in_pool_task = was_in_task;
}

void ThreadPool::execute(Job& job) {
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  const bool timed = obs::detailed_timing_enabled();
  for (;;) {
    const std::size_t chunk =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) break;
    const std::size_t begin = chunk * job.grain;
    const std::size_t end = std::min(job.n, begin + job.grain);
    obs::Stopwatch watch;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*job.body)(i);
      } catch (...) {
        job.record_error(i, std::current_exception());
      }
    }
    if (timed) {
      impl_->task_latency->record(watch.elapsed_us());
      const std::size_t done =
          job.done_chunks.load(std::memory_order_relaxed) + 1;
      impl_->queue_depth->set(
          static_cast<double>(job.num_chunks -
                              std::min(job.num_chunks, done)));
    }
    if (job.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      MutexLock lock(impl_->mutex);
      impl_->done_cv.notify_all();
    }
  }
  t_in_pool_task = was_in_task;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(impl_->mutex);
      // Explicit predicate loop (not the lambda overload) so the guarded
      // reads of stop/current_job are visibly under the held capability.
      while (!impl_->stop &&
             !(impl_->current_job != nullptr &&
               impl_->current_job->next_chunk.load(
                   std::memory_order_relaxed) <
                   impl_->current_job->num_chunks)) {
        impl_->work_cv.wait(impl_->mutex);
      }
      if (impl_->stop) return;
      job = impl_->current_job;
      // Registered under the lock so the caller's completion wait (which
      // also holds the lock when it checks) cannot miss this worker.
      job->active_workers.fetch_add(1, std::memory_order_relaxed);
    }
    execute(*job);
    {
      MutexLock lock(impl_->mutex);
      if (job->active_workers.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        impl_->done_cv.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;

  Job job;
  job.body = &body;
  job.n = n;
  job.grain = grain;
  job.num_chunks = (n + grain - 1) / grain;

  impl_->tasks->add(n);
  const bool serial = threads_ <= 1 || impl_->workers.empty() ||
                      job.num_chunks <= 1 || t_in_pool_task;
  if (serial) {
    impl_->inline_runs->add();
    run_inline(job);
  } else {
    impl_->dispatches->add();
    MutexLock submit_lock(impl_->submit_mutex);
    {
      MutexLock lock(impl_->mutex);
      impl_->current_job = &job;
    }
    impl_->work_cv.notify_all();
    execute(job);
    {
      MutexLock lock(impl_->mutex);
      while (!(job.done_chunks.load(std::memory_order_acquire) ==
                   job.num_chunks &&
               job.active_workers.load(std::memory_order_acquire) == 0)) {
        // opprentice-locks: allow(blocking-under-lock) wait releases pool_work while parked; pool_submit stays held by design to serialize whole parallel_for calls, and no submitter path acquires these in the other order
        impl_->done_cv.wait(impl_->mutex);
      }
      impl_->current_job = nullptr;
    }
    if (obs::detailed_timing_enabled()) impl_->queue_depth->set(0.0);
  }
  if (std::exception_ptr error = job.take_error()) {
    std::rethrow_exception(error);
  }
}

// ---- Global pool ----

namespace {

// opprentice-locks: level(pool_registry)=40
Mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool OPPRENTICE_GUARDED_BY(g_pool_mutex);

// Rebuilds the pool when the degree changes. Callers must hold no
// reference to the previous pool (see header contract).
ThreadPool& pool_with(std::size_t threads) {
  MutexLock lock(g_pool_mutex);
  if (!g_pool || g_pool->thread_count() != threads) {
    g_pool.reset();  // join old workers before building the replacement
    g_pool = std::make_unique<ThreadPool>(threads);
    obs::gauge("opprentice.pool.threads")
        .set(static_cast<double>(g_pool->thread_count()));
  }
  return *g_pool;
}

std::size_t env_threads() {
  const char* spec = std::getenv("OPPRENTICE_THREADS");
  return resolve_thread_count(spec == nullptr ? "" : spec);
}

}  // namespace

ThreadPool& global_pool() {
  {
    MutexLock lock(g_pool_mutex);
    if (g_pool) return *g_pool;
  }
  return pool_with(env_threads());
}

void set_global_threads(std::size_t threads) {
  pool_with(threads == 0 ? hardware_threads() : threads);
}

void set_global_threads_from_env() { pool_with(env_threads()); }

std::size_t global_thread_count() { return global_pool().thread_count(); }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  global_pool().parallel_for(n, body, grain);
}

}  // namespace opprentice::util
