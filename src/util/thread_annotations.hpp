// Clang Thread Safety Analysis attribute shim (see DESIGN.md §5e).
//
// The macros below expand to Clang's capability-analysis attributes when
// compiling with Clang and to nothing everywhere else, so annotating a
// class costs zero on GCC/MSVC while `-DOPPRENTICE_THREAD_SAFETY=ON`
// (Clang + `-Wthread-safety -Werror=thread-safety-analysis`, run as a
// dedicated CI job) turns unguarded access to annotated shared state
// into a compile error.
//
// Usage pattern (see util/mutex.hpp for the annotated lock types):
//
//   util::Mutex mutex_;
//   Job* current_ OPPRENTICE_GUARDED_BY(mutex_) = nullptr;
//
//   void push(Job* j) {
//     util::MutexLock lock(mutex_);
//     current_ = j;                  // OK: capability held
//   }
//   // current_ = j;  outside a lock: thread-safety-analysis error.
#pragma once

#if defined(__clang__)
#define OPPRENTICE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OPPRENTICE_THREAD_ANNOTATION(x)  // no-op on non-Clang compilers
#endif

// Type declarations.
#define OPPRENTICE_CAPABILITY(name) \
  OPPRENTICE_THREAD_ANNOTATION(capability(name))
#define OPPRENTICE_SCOPED_CAPABILITY \
  OPPRENTICE_THREAD_ANNOTATION(scoped_lockable)

// Data members.
#define OPPRENTICE_GUARDED_BY(mu) OPPRENTICE_THREAD_ANNOTATION(guarded_by(mu))
#define OPPRENTICE_PT_GUARDED_BY(mu) \
  OPPRENTICE_THREAD_ANNOTATION(pt_guarded_by(mu))

// Functions that change the capability state.
#define OPPRENTICE_ACQUIRE(...) \
  OPPRENTICE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define OPPRENTICE_RELEASE(...) \
  OPPRENTICE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define OPPRENTICE_TRY_ACQUIRE(...) \
  OPPRENTICE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Functions with capability preconditions.
#define OPPRENTICE_REQUIRES(...) \
  OPPRENTICE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define OPPRENTICE_EXCLUDES(...) \
  OPPRENTICE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Escape hatch; every use needs a comment explaining why the analysis
// cannot see the synchronization.
#define OPPRENTICE_NO_THREAD_SAFETY_ANALYSIS \
  OPPRENTICE_THREAD_ANNOTATION(no_thread_safety_analysis)
