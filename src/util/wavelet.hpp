// Haar discrete wavelet transform for the wavelet anomaly detector.
//
// The detector (Barford et al., "A signal analysis of network traffic
// anomalies") splits a window of the signal into low / mid / high frequency
// bands and measures how much energy the newest point contributes to a band.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace opprentice::util {

// Full multi-level Haar DWT of a power-of-two-length input.
// Output layout: [approx(1), detail level 1 (1), detail level 2 (2), ...,
// detail level L (n/2)] where level L holds the finest details.
// Throws std::invalid_argument if the size is not a power of two (>= 2).
std::vector<double> haar_forward(std::span<const double> xs);

// Inverse of haar_forward.
std::vector<double> haar_inverse(std::span<const double> coeffs);

enum class FrequencyBand { kLow, kMid, kHigh };

// Reconstructs the signal keeping only the coefficients of one band.
// With L total detail levels, the coarsest third of the levels (plus the
// approximation) forms the low band, the middle third the mid band, and the
// finest third the high band.
std::vector<double> band_reconstruction(std::span<const double> xs,
                                        FrequencyBand band);

// Rounds n down to a power of two (>= 1). Used to size detector windows.
std::size_t floor_pow2(std::size_t n);

}  // namespace opprentice::util
