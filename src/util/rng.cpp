#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace opprentice::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // synthetic count KPIs where lambda is large.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k && i + 1 < n; ++i) {
    const std::size_t j = i + uniform_int(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k < n ? k : n);
  return idx;
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace opprentice::util
