// Hot-path annotation for the per-point pipeline (DESIGN.md §5g).
//
// `OPPRENTICE_HOT` marks a function as part of the per-point hot path:
// the code that runs once per ingested sample (streaming feature
// extraction, per-detector severity, forest scoring, duration filtering,
// threshold application). Marked functions and everything they
// transitively call must stay free of heap allocation, locking, blocking
// I/O, throws and clock reads — `opprentice_hotpath` lints the
// transitive closure and CI fails on violations, so the invariant holds
// through the coming optimization work (ROADMAP items 1–2).
//
// Under Clang the macro also expands to a source annotation so
// libclang-based tooling can find the same roots the linter keys on; the
// linter itself matches the bare token and needs no compiler support.
//
// Annotate the definition (or a declaration the definition's qualified
// name matches):
//
//   OPPRENTICE_HOT double feed(double value);
//
// Escape hatches for reviewed exceptions live in the suppression
// grammar, not here: // opprentice-hotpath: allow(<rule>) <why>.
#pragma once

#if defined(__clang__)
#define OPPRENTICE_HOT [[clang::annotate("opprentice::hot")]]
#else
#define OPPRENTICE_HOT
#endif
