// Minimal dense row-major matrix used by the SVD detector.
#pragma once

#include <cstddef>
#include <vector>

namespace opprentice::util {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix transposed() const;

  // this * other; requires cols() == other.rows().
  Matrix multiplied(const Matrix& other) const;

  // Frobenius norm of (this - other); requires equal shapes.
  double frobenius_distance(const Matrix& other) const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace opprentice::util
