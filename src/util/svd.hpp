// Thin singular value decomposition via one-sided Jacobi rotations.
//
// Sized for the SVD anomaly detector's small lag matrices (<= 50 x 7):
// numerically robust, no external dependencies, and fast enough to run
// per data point.
#pragma once

#include <vector>

#include "util/matrix.hpp"

namespace opprentice::util {

struct SvdResult {
  Matrix u;                            // rows x k, orthonormal columns
  std::vector<double> singular_values; // k values, descending
  Matrix v;                            // cols x k, orthonormal columns
};

// Computes the thin SVD A = U * diag(s) * V^T with k = min(rows, cols).
// Singular values are returned in descending order.
SvdResult svd(const Matrix& a);

// Reconstructs A keeping only the top `rank` singular components.
Matrix low_rank_approximation(const Matrix& a, std::size_t rank);

}  // namespace opprentice::util
