#include "util/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace opprentice::util {

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiplied(const Matrix& other) const {
  if (cols_ != other.rows()) {
    throw std::invalid_argument("Matrix::multiplied: shape mismatch");
  }
  Matrix out(rows_, other.cols());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols(); ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

double Matrix::frobenius_distance(const Matrix& other) const {
  if (rows_ != other.rows() || cols_ != other.cols()) {
    throw std::invalid_argument("Matrix::frobenius_distance: shape mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data()[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace opprentice::util
