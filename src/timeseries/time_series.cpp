#include "timeseries/time_series.hpp"

#include <stdexcept>

namespace opprentice::ts {

TimeSeries::TimeSeries(std::string name, std::int64_t start_epoch,
                       std::int64_t interval_seconds,
                       std::vector<double> values)
    : name_(std::move(name)),
      start_epoch_(start_epoch),
      interval_seconds_(interval_seconds),
      values_(std::move(values)) {
  if (interval_seconds_ <= 0) {
    throw std::invalid_argument("TimeSeries: interval must be positive");
  }
  if (kSecondsPerDay % interval_seconds_ != 0) {
    throw std::invalid_argument(
        "TimeSeries: interval must divide one day evenly");
  }
}

std::size_t TimeSeries::points_per_day() const {
  return static_cast<std::size_t>(kSecondsPerDay / interval_seconds_);
}

std::size_t TimeSeries::points_per_week() const {
  return 7 * points_per_day();
}

TimeSeries TimeSeries::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > values_.size()) {
    throw std::out_of_range("TimeSeries::slice: bad range");
  }
  return TimeSeries(
      name_, timestamp(begin), interval_seconds_,
      std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(begin),
                          values_.begin() + static_cast<std::ptrdiff_t>(end)));
}

void TimeSeries::append(const TimeSeries& tail) {
  if (tail.interval_seconds() != interval_seconds_) {
    throw std::invalid_argument("TimeSeries::append: interval mismatch");
  }
  if (!values_.empty() && tail.start_epoch() != timestamp(values_.size())) {
    throw std::invalid_argument("TimeSeries::append: not contiguous");
  }
  values_.insert(values_.end(), tail.values().begin(), tail.values().end());
}

}  // namespace opprentice::ts
