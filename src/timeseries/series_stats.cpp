#include "timeseries/series_stats.hpp"

#include "util/stats.hpp"

namespace opprentice::ts {

SeriesProfile profile(const TimeSeries& series) {
  SeriesProfile p;
  p.name = series.name();
  p.interval_seconds = series.interval_seconds();
  p.length_weeks = static_cast<double>(series.size()) /
                   static_cast<double>(series.points_per_week());
  p.coefficient_of_variation =
      util::coefficient_of_variation(series.values());
  p.daily_seasonality =
      util::autocorrelation(series.values(), series.points_per_day());
  const std::size_t present = util::count_present(series.values());
  p.missing_ratio =
      series.empty()
          ? 0.0
          : 1.0 - static_cast<double>(present) /
                      static_cast<double>(series.size());
  return p;
}

std::string seasonality_class(double daily_seasonality) {
  if (daily_seasonality >= 0.8) return "Strong";
  if (daily_seasonality >= 0.4) return "Moderate";
  return "Weak";
}

}  // namespace opprentice::ts
