// KPI time series: the (timestamp, value) data every Opprentice component
// consumes (§2.1 of the paper).
//
// Values are sampled on a fixed interval, so timestamps are implicit:
// timestamp(i) = start_epoch + i * interval. Missing points ("dirty data",
// §6) are stored as NaN.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace opprentice::ts {

// Seconds-based durations keep calendar arithmetic trivial.
inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;
inline constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

class TimeSeries {
 public:
  TimeSeries() = default;

  // interval_seconds must be positive and divide one day evenly, so that
  // "points per day/week" are well defined (all paper KPIs satisfy this).
  TimeSeries(std::string name, std::int64_t start_epoch,
             std::int64_t interval_seconds, std::vector<double> values);

  const std::string& name() const { return name_; }
  std::int64_t start_epoch() const { return start_epoch_; }
  std::int64_t interval_seconds() const { return interval_seconds_; }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](std::size_t i) const { return values_[i]; }
  double& operator[](std::size_t i) { return values_[i]; }

  std::span<const double> values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  std::int64_t timestamp(std::size_t i) const {
    return start_epoch_ + static_cast<std::int64_t>(i) * interval_seconds_;
  }

  std::size_t points_per_day() const;
  std::size_t points_per_week() const;

  // Sub-series covering [begin, end) points; keeps calendar alignment by
  // shifting start_epoch. Throws std::out_of_range on bad bounds.
  TimeSeries slice(std::size_t begin, std::size_t end) const;

  // Appends another series; it must have the same interval and start
  // exactly where this one ends. Throws std::invalid_argument otherwise.
  void append(const TimeSeries& tail);

  void push_back(double value) { values_.push_back(value); }

 private:
  std::string name_;
  std::int64_t start_epoch_ = 0;
  std::int64_t interval_seconds_ = kSecondsPerMinute;
  std::vector<double> values_;
};

}  // namespace opprentice::ts
