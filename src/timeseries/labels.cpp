#include "timeseries/labels.hpp"

#include <algorithm>

namespace opprentice::ts {

LabelSet::LabelSet(std::vector<LabelWindow> windows)
    : windows_(std::move(windows)) {
  normalize();
}

void LabelSet::normalize() {
  std::erase_if(windows_, [](const LabelWindow& w) { return w.begin >= w.end; });
  std::sort(windows_.begin(), windows_.end(),
            [](const LabelWindow& a, const LabelWindow& b) {
              return a.begin < b.begin;
            });
  std::vector<LabelWindow> merged;
  for (const auto& w : windows_) {
    if (!merged.empty() && w.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }
  windows_ = std::move(merged);
}

void LabelSet::add_window(LabelWindow w) {
  windows_.push_back(w);
  normalize();
}

void LabelSet::remove_range(std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  std::vector<LabelWindow> next;
  for (const auto& w : windows_) {
    if (w.end <= begin || w.begin >= end) {
      next.push_back(w);
      continue;
    }
    if (w.begin < begin) next.push_back({w.begin, begin});
    if (w.end > end) next.push_back({end, w.end});
  }
  windows_ = std::move(next);
  normalize();
}

std::size_t LabelSet::anomalous_points() const {
  std::size_t total = 0;
  for (const auto& w : windows_) total += w.length();
  return total;
}

bool LabelSet::is_anomalous(std::size_t index) const {
  // Windows are sorted: binary search for the last window starting <= index.
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), index,
      [](std::size_t i, const LabelWindow& w) { return i < w.begin; });
  if (it == windows_.begin()) return false;
  --it;
  return index < it->end;
}

std::vector<std::uint8_t> LabelSet::to_point_labels(std::size_t size) const {
  std::vector<std::uint8_t> labels(size, 0);
  for (const auto& w : windows_) {
    for (std::size_t i = w.begin; i < w.end && i < size; ++i) labels[i] = 1;
  }
  return labels;
}

LabelSet LabelSet::from_point_labels(const std::vector<std::uint8_t>& labels) {
  std::vector<LabelWindow> windows;
  std::size_t i = 0;
  while (i < labels.size()) {
    if (labels[i] == 0) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < labels.size() && labels[i] != 0) ++i;
    windows.push_back({begin, i});
  }
  return LabelSet(std::move(windows));
}

LabelSet LabelSet::slice(std::size_t begin, std::size_t end) const {
  std::vector<LabelWindow> out;
  for (const auto& w : windows_) {
    const std::size_t b = std::max(w.begin, begin);
    const std::size_t e = std::min(w.end, end);
    if (b < e) out.push_back({b - begin, e - begin});
  }
  return LabelSet(std::move(out));
}

LabelSet LabelSet::shifted(std::size_t offset) const {
  std::vector<LabelWindow> out;
  out.reserve(windows_.size());
  for (const auto& w : windows_) {
    out.push_back({w.begin + offset, w.end + offset});
  }
  return LabelSet(std::move(out));
}

LabelSet LabelSet::merged(const LabelSet& other) const {
  std::vector<LabelWindow> all = windows_;
  all.insert(all.end(), other.windows_.begin(), other.windows_.end());
  return LabelSet(std::move(all));
}

}  // namespace opprentice::ts
