#include "timeseries/repair.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/fault_injection.hpp"

namespace opprentice::ts {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// A dirty stream could place two points a year apart; refusing grids far
// larger than the input keeps a corrupt timestamp from allocating GiBs.
constexpr std::size_t kMaxGridExpansion = 1000;

void throw_dirty(const std::string& name, const RepairReport& report,
                 const char* what) {
  throw std::runtime_error("ingest of series '" + name +
                           "' failed under repair policy 'fail': " + what +
                           " (" + report.summary() + ")");
}

void record_ingest_metrics(const RepairReport& report) {
  obs::counter("opprentice.ingest.out_of_order").add(report.out_of_order);
  obs::counter("opprentice.ingest.duplicates").add(report.duplicates);
  obs::counter("opprentice.ingest.gaps").add(report.gaps);
  obs::counter("opprentice.ingest.bad_values").add(report.bad_values);
  obs::counter("opprentice.ingest.misaligned").add(report.misaligned);
}

// Linearly interpolates every interior NaN run between its nearest finite
// neighbors; leading/trailing runs copy the nearest finite value.
void fill_interpolate(std::vector<double>& values) {
  const std::size_t n = values.size();
  std::size_t i = 0;
  while (i < n && !std::isfinite(values[i])) ++i;
  if (i == n) return;  // nothing finite to anchor on; leave as-is
  for (std::size_t j = 0; j < i; ++j) values[j] = values[i];
  std::size_t last_finite = i;
  for (++i; i < n; ++i) {
    if (!std::isfinite(values[i])) continue;
    if (i > last_finite + 1) {
      const double lo = values[last_finite];
      const double hi = values[i];
      const double span = static_cast<double>(i - last_finite);
      for (std::size_t j = last_finite + 1; j < i; ++j) {
        const double t = static_cast<double>(j - last_finite) / span;
        values[j] = lo + (hi - lo) * t;
      }
    }
    last_finite = i;
  }
  for (std::size_t j = last_finite + 1; j < n; ++j) {
    values[j] = values[last_finite];
  }
}

}  // namespace

RepairPolicy parse_repair_policy(std::string_view text) {
  if (text == "fail") return RepairPolicy::kFail;
  if (text == "drop") return RepairPolicy::kDrop;
  if (text == "fill-interpolate") return RepairPolicy::kFillInterpolate;
  throw std::invalid_argument("unknown repair policy '" + std::string(text) +
                              "' (expected fail, drop, or fill-interpolate)");
}

const char* to_string(RepairPolicy policy) {
  switch (policy) {
    case RepairPolicy::kFail:
      return "fail";
    case RepairPolicy::kDrop:
      return "drop";
    case RepairPolicy::kFillInterpolate:
      return "fill-interpolate";
  }
  return "unknown";
}

std::string RepairReport::summary() const {
  return "out_of_order=" + std::to_string(out_of_order) +
         " duplicates=" + std::to_string(duplicates) +
         " gaps=" + std::to_string(gaps) +
         " bad_values=" + std::to_string(bad_values) +
         " misaligned=" + std::to_string(misaligned);
}

RepairResult repair_series(std::string name, std::vector<RawPoint> points,
                           std::int64_t interval_seconds,
                           RepairPolicy policy) {
  if (points.empty()) {
    throw std::runtime_error("ingest of series '" + name +
                             "': no data points");
  }

  RepairReport report;

  // Pass 1: ordering. Count inversions against the original arrival order
  // before sorting, so the report reflects what was actually dirty.
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].timestamp < points[i - 1].timestamp) ++report.out_of_order;
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const RawPoint& a, const RawPoint& b) {
                     return a.timestamp < b.timestamp;
                   });

  // Pass 2: interval. Infer from the smallest positive delta when the
  // caller did not specify one (on a clean stream this is exactly
  // t[1] - t[0]).
  if (interval_seconds == 0) {
    for (std::size_t i = 1; i < points.size(); ++i) {
      const std::int64_t delta = points[i].timestamp - points[i - 1].timestamp;
      if (delta > 0 && (interval_seconds == 0 || delta < interval_seconds)) {
        interval_seconds = delta;
      }
    }
    if (interval_seconds == 0) {
      throw std::runtime_error(
          "ingest of series '" + name +
          "': cannot infer sampling interval (all timestamps identical)");
    }
  }
  if (interval_seconds <= 0 || kSecondsPerDay % interval_seconds != 0) {
    throw std::runtime_error(
        "ingest of series '" + name + "': sampling interval " +
        std::to_string(interval_seconds) +
        "s must be positive and divide one day evenly");
  }

  // Pass 3: grid placement. Snap each point onto the fixed grid anchored
  // at the first timestamp; first write to a slot wins, extras count as
  // duplicates, empty slots are gaps.
  const std::int64_t start = points.front().timestamp;
  const std::int64_t span = points.back().timestamp - start;
  const std::size_t slots = static_cast<std::size_t>(span / interval_seconds) + 1;
  if (slots > points.size() * kMaxGridExpansion) {
    throw std::runtime_error(
        "ingest of series '" + name + "': timestamp span " +
        std::to_string(span) + "s implies " + std::to_string(slots) +
        " grid slots for " + std::to_string(points.size()) +
        " points — refusing (corrupt timestamp?)");
  }

  std::vector<double> values(slots, kNan);
  std::vector<bool> filled(slots, false);
  for (const RawPoint& p : points) {
    const std::int64_t offset = p.timestamp - start;
    std::int64_t slot = (offset + interval_seconds / 2) / interval_seconds;
    if (slot < 0) slot = 0;
    if (static_cast<std::size_t>(slot) >= slots) {
      slot = static_cast<std::int64_t>(slots) - 1;
    }
    if (offset != slot * interval_seconds) ++report.misaligned;
    if (filled[static_cast<std::size_t>(slot)]) {
      ++report.duplicates;
      continue;
    }
    filled[static_cast<std::size_t>(slot)] = true;
    double v = p.value;
    if (!std::isfinite(v)) {
      ++report.bad_values;
      v = kNan;
    }
    values[static_cast<std::size_t>(slot)] = v;
  }
  for (std::size_t i = 0; i < slots; ++i) {
    if (!filled[i]) ++report.gaps;
  }

  if (policy == RepairPolicy::kFail && !report.clean()) {
    record_ingest_metrics(report);
    throw_dirty(name, report, "stream is dirty");
  }
  if (policy == RepairPolicy::kFillInterpolate) {
    fill_interpolate(values);
  }

  record_ingest_metrics(report);
  if (!report.clean()) {
    obs::log(obs::LogLevel::kWarn, "ingest", "repair",
             {{"series", name},
              {"policy", to_string(policy)},
              {"out_of_order", report.out_of_order},
              {"duplicates", report.duplicates},
              {"gaps", report.gaps},
              {"bad_values", report.bad_values},
              {"misaligned", report.misaligned}});
    // One flight event per dirty series, keyed by the input shape so
    // reruns over the same stream produce the same event.
    obs::flight_record(
        "ingest", "repair",
        util::fault_key(points.size(), static_cast<std::size_t>(start)),
        "series=" + name + " policy=" + to_string(policy) + " " +
            report.summary());
  }

  return RepairResult{
      TimeSeries(std::move(name), start, interval_seconds, std::move(values)),
      report};
}

void inject_ingest_faults(std::vector<RawPoint>& points,
                          std::uint64_t key_salt) {
  namespace faults = util::faults;
  if (!util::faults_enabled()) return;
  std::vector<RawPoint> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    RawPoint p = points[i];
    const std::uint64_t key = i ^ key_salt;
    if (util::inject_fault(faults::kIngestGap, key)) {
      continue;  // drop the point entirely -> a gap on the grid
    }
    if (util::inject_fault(faults::kIngestNan, key)) {
      p.value = kNan;
    }
    if (!out.empty() && util::inject_fault(faults::kIngestDuplicate, key)) {
      p.timestamp = out.back().timestamp;  // collide with the previous slot
    }
    out.push_back(p);
    if (out.size() >= 2 && util::inject_fault(faults::kIngestDisorder, key)) {
      std::swap(out[out.size() - 1], out[out.size() - 2]);
    }
  }
  points = std::move(out);
}

}  // namespace opprentice::ts
