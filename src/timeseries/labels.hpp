// Anomaly labels.
//
// Operators label *windows* of anomalies with the labeling tool (§4.2);
// training and detection work on individual points (§4.3.1). LabelSet keeps
// the window representation (needed for the labeling-time model of Fig 14)
// and converts to per-point 0/1 labels on demand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace opprentice::ts {

// Half-open range of point indices [begin, end) labeled anomalous.
struct LabelWindow {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t length() const { return end - begin; }
  bool operator==(const LabelWindow&) const = default;
};

class LabelSet {
 public:
  LabelSet() = default;
  explicit LabelSet(std::vector<LabelWindow> windows);

  // Adds a window, merging with overlapping/adjacent existing windows
  // (labeling the same region twice must not double-count, §4.2).
  void add_window(LabelWindow w);

  // Removes the anomaly label from [begin, end) — the tool's right-click
  // "(partially) cancel previously labeled window".
  void remove_range(std::size_t begin, std::size_t end);

  const std::vector<LabelWindow>& windows() const { return windows_; }
  std::size_t window_count() const { return windows_.size(); }

  // Total number of labeled anomalous points.
  std::size_t anomalous_points() const;

  bool is_anomalous(std::size_t index) const;

  // Per-point labels for a series of `size` points (1 = anomaly).
  std::vector<std::uint8_t> to_point_labels(std::size_t size) const;

  // Builds the window representation back from per-point labels.
  static LabelSet from_point_labels(const std::vector<std::uint8_t>& labels);

  // Labels restricted to [begin, end), re-based to start at 0.
  LabelSet slice(std::size_t begin, std::size_t end) const;

  // Windows whose indices are shifted by `offset` (for stitching slices).
  LabelSet shifted(std::size_t offset) const;

  // Union of this set and `other`.
  LabelSet merged(const LabelSet& other) const;

 private:
  void normalize();

  std::vector<LabelWindow> windows_;  // sorted, disjoint, non-adjacent
};

}  // namespace opprentice::ts
