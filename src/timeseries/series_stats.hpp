// Whole-series statistics used to characterize KPIs (Table 1) and to
// validate that synthetic KPIs match the paper's published properties.
#pragma once

#include <string>

#include "timeseries/time_series.hpp"

namespace opprentice::ts {

struct SeriesProfile {
  std::string name;
  std::int64_t interval_seconds = 0;
  double length_weeks = 0.0;
  double coefficient_of_variation = 0.0;
  // Autocorrelation at a one-day lag; proxy for the "seasonality" row of
  // Table 1 (strong / moderate / weak).
  double daily_seasonality = 0.0;
  double missing_ratio = 0.0;
};

SeriesProfile profile(const TimeSeries& series);

// Classifies the daily-seasonality score the way Table 1 does.
// strong >= 0.8, moderate >= 0.4, weak otherwise.
std::string seasonality_class(double daily_seasonality);

}  // namespace opprentice::ts
