// Ingest hardening (DESIGN.md §5f): real KPI streams arrive dirty — gaps,
// duplicated or out-of-order timestamps, NaN/Inf values (§6 calls these
// "dirty data"). The repair pass turns a raw (timestamp, value) stream
// into the fixed-interval TimeSeries the rest of the pipeline assumes,
// under a configurable policy:
//
//   fail              any defect throws with a precise description
//   drop              defects degrade to missing points (NaN); duplicates
//                     are dropped, out-of-order points are re-sorted
//   fill-interpolate  like drop, then missing points are linearly
//                     interpolated between the nearest finite neighbors
//
// Every repair is counted in the report, mirrored to the
// opprentice.ingest.* metrics, and logged (warn) when anything was dirty.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "timeseries/time_series.hpp"

namespace opprentice::ts {

enum class RepairPolicy { kFail, kDrop, kFillInterpolate };

// Parses "fail" | "drop" | "fill-interpolate"; throws
// std::invalid_argument on anything else.
RepairPolicy parse_repair_policy(std::string_view text);
const char* to_string(RepairPolicy policy);

// One raw ingest point before grid alignment.
struct RawPoint {
  std::int64_t timestamp = 0;
  double value = 0.0;
};

struct RepairReport {
  std::size_t out_of_order = 0;  // points behind their predecessor
  std::size_t duplicates = 0;    // extra points sharing a grid slot
  std::size_t gaps = 0;          // grid slots with no point at all
  std::size_t bad_values = 0;    // NaN/Inf input values
  std::size_t misaligned = 0;    // timestamps snapped onto the grid

  std::size_t total() const {
    return out_of_order + duplicates + gaps + bad_values + misaligned;
  }
  bool clean() const { return total() == 0; }

  // "out_of_order=2 duplicates=1 ..." for errors and logs.
  std::string summary() const;
};

struct RepairResult {
  TimeSeries series;
  RepairReport report;
};

// Aligns `points` onto the fixed interval grid and applies `policy`.
// interval_seconds == 0 infers the interval as the smallest positive
// timestamp delta. Throws std::runtime_error under kFail when the stream
// is dirty, and for structural problems no policy can repair (an interval
// that does not divide one day, or a grid vastly larger than the input).
RepairResult repair_series(std::string name, std::vector<RawPoint> points,
                           std::int64_t interval_seconds,
                           RepairPolicy policy);

// The ingest.* injection points (DESIGN.md §5f): deterministically drops
// points (ingest.gap), corrupts values to NaN (ingest.nan), duplicates
// the previous point's timestamp (ingest.duplicate), and swaps adjacent
// points (ingest.disorder). No-op when fault injection is disabled.
// `key_salt` is XORed into each point's injection key so multi-tenant
// callers (the fleet engine passes util::stable_id_hash(series_id)) give
// each series its own defect pattern; 0 keeps single-series keys as-is.
void inject_ingest_faults(std::vector<RawPoint>& points,
                          std::uint64_t key_salt = 0);

}  // namespace opprentice::ts
