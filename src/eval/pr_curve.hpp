// Precision-Recall curves and AUCPR (§4.5.1, §5.3).
//
// A PR curve plots precision against recall "for every possible cThld of a
// machine learning algorithm (or for every sThld of a basic detector)".
// The paper evaluates detection approaches by the area under the PR curve
// (AUCPR) because the data are heavily imbalanced.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eval/metrics.hpp"

namespace opprentice::eval {

struct PrPoint {
  double threshold = 0.0;  // classify anomaly when score >= threshold
  double recall = 0.0;
  double precision = 0.0;
};

class PrCurve {
 public:
  // Builds the curve from anomaly scores and ground-truth labels.
  // One point per distinct score value, ordered by ascending recall.
  // Rows where truth/scores are NaN are skipped.
  PrCurve(std::span<const double> scores,
          std::span<const std::uint8_t> truth);

  const std::vector<PrPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Area under the curve by trapezoidal integration over recall, in [0,1].
  double aucpr() const;

  // The realized (recall, precision) when thresholding at `threshold`.
  PrPoint at_threshold(double threshold) const;

  // Max precision among points with recall >= min_recall (Table 4's
  // "maximum precision when recall >= 0.66"). NaN if no such point.
  double max_precision_at_recall(double min_recall) const;

  // True if some point satisfies the preference box.
  bool reaches(const AccuracyPreference& pref) const;

 private:
  std::vector<PrPoint> points_;
  std::size_t actual_positives_ = 0;
};

// Per-point binary decisions at a threshold.
std::vector<std::uint8_t> decide(std::span<const double> scores,
                                 double threshold);

// AUCPR of raw severity scores against labels; shorthand used when ranking
// the 133 basic configurations.
double aucpr_of_scores(std::span<const double> scores,
                       std::span<const std::uint8_t> truth);

}  // namespace opprentice::eval
