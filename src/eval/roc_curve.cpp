#include "eval/roc_curve.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace opprentice::eval {

RocCurve::RocCurve(std::span<const double> scores,
                   std::span<const std::uint8_t> truth) {
  const std::size_t n = std::min(scores.size(), truth.size());
  std::vector<std::size_t> order;
  order.reserve(n);
  std::size_t positives = 0, negatives = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(scores[i])) continue;
    order.push_back(i);
    if (truth[i] != 0) {
      ++positives;
    } else {
      ++negatives;
    }
  }
  if (positives == 0 || negatives == 0) return;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::size_t tp = 0, fp = 0;
  points_.reserve(256);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    if (truth[i] != 0) {
      ++tp;
    } else {
      ++fp;
    }
    const bool last_of_tie =
        k + 1 == order.size() || scores[order[k + 1]] < scores[i];
    if (!last_of_tie) continue;
    points_.push_back(
        {scores[i],
         static_cast<double>(fp) / static_cast<double>(negatives),
         static_cast<double>(tp) / static_cast<double>(positives)});
  }
}

double RocCurve::auroc() const {
  if (points_.empty()) return 0.0;
  double area = 0.0;
  double prev_fpr = 0.0, prev_tpr = 0.0;
  for (const auto& p : points_) {
    area += (p.false_positive_rate - prev_fpr) *
            (p.true_positive_rate + prev_tpr) / 2.0;
    prev_fpr = p.false_positive_rate;
    prev_tpr = p.true_positive_rate;
  }
  // Close the curve to (1, 1).
  area += (1.0 - prev_fpr) * (1.0 + prev_tpr) / 2.0;
  return area;
}

}  // namespace opprentice::eval
