// ROC curves (footnote 3 of §4.5.1).
//
// "A similar method is Receiver Operator Characteristic (ROC) curves...
// However, when dealing with highly imbalanced data sets, PR curves can
// provide a more informative representation of the performance [Davis &
// Goadrich]." We implement ROC/AUROC both because prior detector work
// evaluates with it (§7(b)) and to demonstrate that claim: under heavy
// imbalance a mediocre detector can look near-perfect in ROC space while
// its PR curve exposes the false-alarm volume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace opprentice::eval {

struct RocPoint {
  double threshold = 0.0;
  double false_positive_rate = 0.0;
  double true_positive_rate = 0.0;  // == recall
};

class RocCurve {
 public:
  // One point per distinct score, ordered by ascending FPR. Rows with a
  // NaN score are skipped.
  RocCurve(std::span<const double> scores,
           std::span<const std::uint8_t> truth);

  const std::vector<RocPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Area under the ROC curve (trapezoidal); 0.5 = random, 1 = perfect.
  double auroc() const;

 private:
  std::vector<RocPoint> points_;
};

}  // namespace opprentice::eval
