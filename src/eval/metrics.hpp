// Accuracy accounting (§2.2): recall, precision, F-Score, and the
// PC-Score — the paper's preference-centric metric for choosing cThlds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace opprentice::eval {

struct ConfusionCounts {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  std::size_t true_negatives = 0;

  std::size_t detected() const { return true_positives + false_positives; }
  std::size_t actual_positives() const {
    return true_positives + false_negatives;
  }
};

// Counts from per-point decisions vs ground-truth labels (same length).
ConfusionCounts confusion(std::span<const std::uint8_t> predicted,
                          std::span<const std::uint8_t> truth);

// recall = TP / (TP + FN). A week with no actual positives is vacuously
// perfect: recall = 1 (nothing there to miss), never NaN, so PC-Score and
// windowed accuracy stay defined on clean weeks.
double recall(const ConfusionCounts& c);

// precision = TP / (TP + FP). Detecting nothing raises no false alarm:
// precision = 1, never NaN, so a silent detector on a clean week scores
// F = 1 rather than poisoning downstream aggregation with NaN.
double precision(const ConfusionCounts& c);

// F-Score = 2 r p / (r + p). NaN propagates; 0 when r = p = 0.
double f_score(double r, double p);

// Operators' accuracy preference: "recall >= R and precision >= P" (§2.2).
struct AccuracyPreference {
  double min_recall = 0.66;
  double min_precision = 0.66;

  bool satisfied_by(double r, double p) const {
    return r >= min_recall && p >= min_precision;
  }

  // The preference box scaled towards the origin by `ratio` >= 1
  // (Fig 12's line charts lower the preference by scaling the box up).
  AccuracyPreference scaled(double ratio) const {
    return {min_recall / ratio, min_precision / ratio};
  }
};

// PC-Score (§4.5.1): the F-Score plus an incentive constant of 1 when the
// point satisfies the preference, so satisfying points always outrank
// non-satisfying ones.
double pc_score(double r, double p, const AccuracyPreference& pref);

// Shortest-Euclidean-distance-to-(1,1) criterion, SD(1,1) [Perkins &
// Schisterman]. Smaller is better.
double sd_distance(double r, double p);

}  // namespace opprentice::eval
