#include "eval/pr_curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace opprentice::eval {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

PrCurve::PrCurve(std::span<const double> scores,
                 std::span<const std::uint8_t> truth) {
  const std::size_t n = std::min(scores.size(), truth.size());
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isnan(scores[i])) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  for (std::size_t i : order) actual_positives_ += truth[i] != 0 ? 1 : 0;
  if (actual_positives_ == 0 || order.empty()) return;

  // Walk thresholds from the highest score down; emit one point per
  // distinct score (the point where threshold == that score).
  std::size_t tp = 0, fp = 0;
  points_.reserve(256);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    if (truth[i] != 0) {
      ++tp;
    } else {
      ++fp;
    }
    const bool last_of_tie =
        k + 1 == order.size() || scores[order[k + 1]] < scores[i];
    if (!last_of_tie) continue;
    PrPoint p;
    p.threshold = scores[i];
    p.recall = static_cast<double>(tp) /
               static_cast<double>(actual_positives_);
    p.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    points_.push_back(p);
  }
}

double PrCurve::aucpr() const {
  if (points_.empty()) return 0.0;
  double area = 0.0;
  double prev_recall = 0.0;
  // Anchor the first segment at (recall of the first point, its precision):
  // integrate precision over recall with trapezoids between points.
  double prev_precision = points_.front().precision;
  for (const auto& p : points_) {
    area += (p.recall - prev_recall) * (p.precision + prev_precision) / 2.0;
    prev_recall = p.recall;
    prev_precision = p.precision;
  }
  return area;
}

PrPoint PrCurve::at_threshold(double threshold) const {
  // Points are ordered by descending threshold (ascending recall): find
  // the last point whose threshold >= requested threshold.
  PrPoint result{threshold, 0.0, kNaN};
  for (const auto& p : points_) {
    if (p.threshold >= threshold) {
      result.recall = p.recall;
      result.precision = p.precision;
    } else {
      break;
    }
  }
  return result;
}

double PrCurve::max_precision_at_recall(double min_recall) const {
  double best = kNaN;
  for (const auto& p : points_) {
    if (p.recall >= min_recall &&
        (std::isnan(best) || p.precision > best)) {
      best = p.precision;
    }
  }
  return best;
}

bool PrCurve::reaches(const AccuracyPreference& pref) const {
  for (const auto& p : points_) {
    if (pref.satisfied_by(p.recall, p.precision)) return true;
  }
  return false;
}

std::vector<std::uint8_t> decide(std::span<const double> scores,
                                 double threshold) {
  std::vector<std::uint8_t> out(scores.size(), 0);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    out[i] = (!std::isnan(scores[i]) && scores[i] >= threshold) ? 1 : 0;
  }
  return out;
}

double aucpr_of_scores(std::span<const double> scores,
                       std::span<const std::uint8_t> truth) {
  return PrCurve(scores, truth).aucpr();
}

}  // namespace opprentice::eval
