// cThld selection metrics compared in §5.5 / Fig 12: the default cThld
// (0.5), F-Score maximization, SD(1,1), and the paper's PC-Score.
#pragma once

#include <string>

#include "eval/pr_curve.hpp"

namespace opprentice::eval {

enum class ThresholdMethod {
  kDefault,  // fixed 0.5 (random forest's default majority vote)
  kFScore,   // maximize F-Score
  kSd11,     // minimize Euclidean distance to (recall, precision) = (1, 1)
  kPcScore,  // maximize PC-Score under the operators' preference
};

const char* to_string(ThresholdMethod method);

struct ThresholdChoice {
  double cthld = 0.5;
  double recall = 0.0;
  double precision = 0.0;
};

// Picks a cThld from the PR curve with the given method. The preference is
// only consulted by kPcScore. On an empty curve, returns the default 0.5
// with zero recall/precision.
ThresholdChoice pick_threshold(const PrCurve& curve, ThresholdMethod method,
                               const AccuracyPreference& pref = {});

}  // namespace opprentice::eval
