#include "eval/metrics.hpp"

#include <cmath>
#include <limits>

namespace opprentice::eval {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

ConfusionCounts confusion(std::span<const std::uint8_t> predicted,
                          std::span<const std::uint8_t> truth) {
  ConfusionCounts c;
  const std::size_t n = std::min(predicted.size(), truth.size());
  for (std::size_t i = 0; i < n; ++i) {
    const bool p = predicted[i] != 0;
    const bool t = truth[i] != 0;
    if (p && t) {
      ++c.true_positives;
    } else if (p && !t) {
      ++c.false_positives;
    } else if (!p && t) {
      ++c.false_negatives;
    } else {
      ++c.true_negatives;
    }
  }
  return c;
}

double recall(const ConfusionCounts& c) {
  const std::size_t denom = c.actual_positives();
  // No actual positives: nothing could be missed, so recall is vacuously
  // perfect. Returning NaN here would poison f_score/pc_score on every
  // clean week (see eval_test DefinedOnDegenerateWeeks).
  if (denom == 0) return 1.0;
  return static_cast<double>(c.true_positives) / static_cast<double>(denom);
}

double precision(const ConfusionCounts& c) {
  const std::size_t denom = c.detected();
  // Nothing detected: no false alarms were raised, so precision is
  // vacuously perfect (and a missed-everything week still scores F = 0
  // through recall = 0).
  if (denom == 0) return 1.0;
  return static_cast<double>(c.true_positives) / static_cast<double>(denom);
}

double f_score(double r, double p) {
  if (std::isnan(r) || std::isnan(p)) return kNaN;
  if (r + p == 0.0) return 0.0;
  return 2.0 * r * p / (r + p);
}

double pc_score(double r, double p, const AccuracyPreference& pref) {
  const double f = f_score(r, p);
  if (std::isnan(f)) return kNaN;
  return pref.satisfied_by(r, p) ? f + 1.0 : f;
}

double sd_distance(double r, double p) {
  if (std::isnan(r) || std::isnan(p)) return kNaN;
  return std::sqrt((1.0 - r) * (1.0 - r) + (1.0 - p) * (1.0 - p));
}

}  // namespace opprentice::eval
