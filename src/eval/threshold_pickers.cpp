#include "eval/threshold_pickers.hpp"

#include <cmath>
#include <limits>

namespace opprentice::eval {

const char* to_string(ThresholdMethod method) {
  switch (method) {
    case ThresholdMethod::kDefault: return "default_cthld";
    case ThresholdMethod::kFScore: return "f_score";
    case ThresholdMethod::kSd11: return "sd(1,1)";
    case ThresholdMethod::kPcScore: return "pc_score";
  }
  return "?";
}

ThresholdChoice pick_threshold(const PrCurve& curve, ThresholdMethod method,
                               const AccuracyPreference& pref) {
  ThresholdChoice choice;
  if (curve.empty()) return choice;

  if (method == ThresholdMethod::kDefault) {
    const PrPoint p = curve.at_threshold(0.5);
    choice.cthld = 0.5;
    choice.recall = p.recall;
    choice.precision = std::isnan(p.precision) ? 0.0 : p.precision;
    return choice;
  }

  double best_value = -std::numeric_limits<double>::infinity();
  for (const auto& p : curve.points()) {
    double value = 0.0;
    switch (method) {
      case ThresholdMethod::kFScore:
        value = f_score(p.recall, p.precision);
        break;
      case ThresholdMethod::kSd11:
        value = -sd_distance(p.recall, p.precision);
        break;
      case ThresholdMethod::kPcScore:
        value = pc_score(p.recall, p.precision, pref);
        break;
      case ThresholdMethod::kDefault:
        break;  // handled above
    }
    if (!std::isnan(value) && value > best_value) {
      best_value = value;
      choice.cthld = p.threshold;
      choice.recall = p.recall;
      choice.precision = p.precision;
    }
  }
  return choice;
}

}  // namespace opprentice::eval
