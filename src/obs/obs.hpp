// Umbrella header for the observability layer (see DESIGN.md
// "Observability"):
//
//   metrics.hpp           counters / gauges / exponential-bucket
//                         histograms, Prometheus-text and JSON snapshots
//   trace.hpp             ScopedSpan RAII timers -> Chrome trace-event
//                         JSON (OPPRENTICE_TRACE=<path> or --trace <path>)
//   log.hpp               leveled key=value structured logging
//                         (OPPRENTICE_LOG=debug|info|warn|error)
//   cost_attribution.hpp  per-configuration cost accumulator (count/sum/
//                         max µs per detector configuration)
//   flight_recorder.hpp   fixed-size ring of structured events for
//                         postmortems, deterministic dump order
//   run_report.hpp        schema-versioned per-run JSON manifest
//                         (--report <path>, bench --json)
//
// All of these are always compiled in and cost (near) nothing when
// disabled.
#pragma once

#include "obs/cost_attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
