// Umbrella header for the observability layer (see DESIGN.md
// "Observability"):
//
//   metrics.hpp  counters / gauges / exponential-bucket histograms,
//                Prometheus-text and JSON snapshots
//   trace.hpp    ScopedSpan RAII timers -> Chrome trace-event JSON
//                (OPPRENTICE_TRACE=<path> or --trace <path>)
//   log.hpp      leveled key=value structured logging
//                (OPPRENTICE_LOG=debug|info|warn|error)
//
// All three are always compiled in and cost (near) nothing when disabled.
#pragma once

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
