#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "obs/json_util.hpp"

namespace opprentice::obs {
namespace {

std::atomic<bool> g_detailed_timing{false};

// Atomic fetch-min/-max for doubles via CAS (fetch_add on atomic<double>
// is C++20 but min/max are not; CAS keeps this portable and TSan-clean).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// '.' and any other non-[a-zA-Z0-9_] byte become '_' for Prometheus.
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_prometheus_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
  } else if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

double Histogram::upper_bound(std::size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, kMinExponent + static_cast<int>(i));
}

double Histogram::lower_bound(std::size_t i) {
  if (i == 0) return 0.0;
  return upper_bound(i - 1);
}

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negatives, NaN
  const int e = std::ilogb(v);  // floor(log2(v)); v in [2^e, 2^(e+1))
  // Smallest k with v <= 2^k: k = e when v is an exact power of two.
  const int k = (v == std::ldexp(1.0, e)) ? e : e + 1;
  const long idx = static_cast<long>(k) - kMinExponent;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<std::size_t>(idx);
}

void Histogram::record(double v) {
  if (std::isnan(v)) return;
  if (v < 0.0) v = 0.0;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min_value() const {
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max_value() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based.
  const double rank = q * static_cast<double>(n - 1) + 1.0;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    const double before = static_cast<double>(cum);
    cum += c;
    if (static_cast<double>(cum) < rank) continue;
    // Interpolate within the bucket, clamped to observed extremes (also
    // gives the unbounded last bucket a finite answer).
    const double lo = std::max(lower_bound(i), 0.0);
    const double hi = std::isinf(upper_bound(i)) ? max_value()
                                                 : upper_bound(i);
    const double frac =
        c == 1 ? 1.0
               : std::clamp((rank - before) / static_cast<double>(c), 0.0, 1.0);
    const double est = lo + (hi - lo) * frac;
    return std::clamp(est, std::min(min_value(), max_value()), max_value());
  }
  return max_value();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  // opprentice-check: allow(unguarded-static) Meyers singleton; every Registry member is guarded by its own mutex_
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<std::string> Registry::counter_names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, _] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::gauge_names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, _] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::histogram_names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, _] : histograms_) names.push_back(name);
  return names;
}

std::string Registry::prometheus_text() const {
  util::MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + ' ' + std::to_string(c->value()) + '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + ' ';
    append_prometheus_double(out, g->value());
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cum += h->bucket_count(i);
      if (h->bucket_count(i) == 0 && i + 1 < Histogram::kNumBuckets) continue;
      out += pname + "_bucket{le=\"";
      append_prometheus_double(out, Histogram::upper_bound(i));
      out += "\"} " + std::to_string(cum) + '\n';
    }
    out += pname + "_sum ";
    append_prometheus_double(out, h->sum());
    out += '\n';
    out += pname + "_count " + std::to_string(h->count()) + '\n';
  }
  return out;
}

std::string Registry::json() const {
  util::MutexLock lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": ";
    append_json_double(out, g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(h->count());
    out += ", \"sum\": ";
    append_json_double(out, h->sum());
    out += ", \"min\": ";
    append_json_double(out, h->count() == 0 ? 0.0 : h->min_value());
    out += ", \"max\": ";
    append_json_double(out, h->max_value());
    out += ", \"mean\": ";
    append_json_double(out, h->mean());
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"p50", 0.5},
          {"p90", 0.9},
          {"p99", 0.99}}) {
      out += ", \"";
      out += label;
      out += "\": ";
      append_json_double(out, h->quantile(q));
    }
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h->bucket_count(i) == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"le\": ";
      append_json_double(out, std::isinf(Histogram::upper_bound(i))
                                  ? h->max_value()
                                  : Histogram::upper_bound(i));
      out += ", \"count\": " + std::to_string(h->bucket_count(i)) + '}';
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Registry::reset_values() {
  util::MutexLock lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const bool prom =
      std::string_view(path).ends_with(".prom") ||
      std::string_view(path).ends_with(".txt");
  out << (prom ? Registry::instance().prometheus_text()
               : Registry::instance().json());
  return static_cast<bool>(out);
}

bool detailed_timing_enabled() {
  return g_detailed_timing.load(std::memory_order_relaxed);
}

void set_detailed_timing(bool enabled) {
  g_detailed_timing.store(enabled, std::memory_order_relaxed);
}

}  // namespace opprentice::obs
