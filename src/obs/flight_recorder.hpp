// Flight recorder (DESIGN.md §5h): a fixed-size ring buffer of structured
// events for chaos-test postmortems.
//
// Logs answer "what happened" only when someone enabled them before the
// crash; the flight recorder is always on, bounded, and cheap, so the
// last N notable events (quarantine transitions, forest-training
// failures, ingest repairs, fault fires, pipeline stage transitions) are
// available after the fact — dumped into every run report and to stderr
// on a fatal CLI error.
//
// Determinism contract: an event is (category, name, key, detail) with NO
// timestamp and NO thread id — every field is a pure function of the
// logical work unit (configuration index, point index, training-window
// bounds), exactly like the fault-injection keys. Dumps sort events by
// (category, name, key, detail), so as long as the buffer did not
// overflow, a dump is byte-identical across reruns at any thread count
// (locked in by tests/parallel_equivalence_test.cpp). Overflow drops the
// oldest events and is itself reported (`dropped` in the dump), so a
// truncated postmortem is never mistaken for a complete one.
//
// Recording takes a mutex: every instrumented site is a rare transition
// (quarantine trips once per configuration, training fails at most once
// per week, repairs happen once per ingest pass), never a steady-state
// per-point path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace opprentice::obs {

struct FlightEvent {
  // Dot-separated component like metric names: "detector", "forest",
  // "ingest", "fault", "stage".
  std::string category;
  // Event name within the category: "quarantine", "train_failed", ...
  std::string name;
  // Deterministic ordering key for the logical unit of work
  // (configuration index, fault key, stage ordinal).
  std::uint64_t key = 0;
  // Free-form detail, pre-rendered at the call site ("config=svd(...)").
  std::string detail;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  // Process-wide recorder used by the library's instrumentation.
  static FlightRecorder& instance();

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Named record_event (not record) so tokenizer-level tools like the
  // hot-path analyzer never confuse this locking append with the
  // wait-free Histogram::record / CostSlot::record on the hot path.
  void record_event(std::string_view category, std::string_view name,
                    std::uint64_t key, std::string_view detail = {});

  // Events currently buffered / dropped to overflow since the last clear.
  std::size_t event_count() const;
  std::uint64_t dropped_count() const;
  std::size_t capacity() const { return capacity_; }

  // Buffered events sorted by (category, name, key, detail) — the
  // deterministic postmortem order, independent of thread interleaving.
  std::vector<FlightEvent> sorted_events() const;

  // JSON: {"capacity": N, "dropped": D, "events": [...]} in sorted order.
  std::string dump_json() const;
  // One "category.name key detail" line per sorted event, for stderr.
  std::string dump_text() const;

  void clear();

 private:
  const std::size_t capacity_;
  // opprentice-locks: level(flight_recorder)=95
  mutable util::Mutex mutex_;
  // Ring storage: next_ is the overwrite position once size reached
  // capacity_ (events_ then holds the newest capacity_ events).
  std::vector<FlightEvent> events_ OPPRENTICE_GUARDED_BY(mutex_);
  std::size_t next_ OPPRENTICE_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ OPPRENTICE_GUARDED_BY(mutex_) = 0;
};

// Shorthand against the process-wide recorder.
inline void flight_record(std::string_view category, std::string_view name,
                          std::uint64_t key, std::string_view detail = {}) {
  FlightRecorder::instance().record_event(category, name, key, detail);
}

}  // namespace opprentice::obs
