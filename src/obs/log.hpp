// Structured logger: leveled `key=value` lines, off by default.
//
// `OPPRENTICE_LOG=debug|info|warn|error` (or `off`) sets the level from
// the environment; `set_log_level` overrides it programmatically. When a
// level is disabled, `log()` returns after one relaxed atomic load —
// guard hot call sites with `log_enabled()` so argument formatting is
// skipped too.
//
// Line format (one line per event, written atomically to the sink):
//   level=info comp=weekly event=window_done week=3 cthld=0.71
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

namespace opprentice::obs {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

const char* to_string(LogLevel level);
// Parses "debug", "info", "warn", "error", "off" (anything else: kOff).
LogLevel parse_log_level(std::string_view text);

LogLevel log_level();
void set_log_level(LogLevel level);

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level()) &&
         level != LogLevel::kOff;
}

// Redirects log lines (default: stderr). Pass nullptr to restore stderr.
// The sink must outlive all logging; intended for tests.
void set_log_sink(std::ostream* sink);

// One key=value pair. Values are pre-formatted at the call site; the
// constructors cover the types instrumentation actually logs.
struct LogField {
  std::string_view key;
  std::string value;

  LogField(std::string_view k, std::string_view v)
      : key(k), value(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), value(v) {}
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  LogField(std::string_view k, T v) : key(k), value(format_number(v)) {}
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false") {}

 private:
  static std::string format_number(double v);
  static std::string format_number(float v) {
    return format_number(static_cast<double>(v));
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T>, int> = 0>
  static std::string format_number(T v) {
    return std::to_string(v);
  }
};

// Emits one structured line if `level` is enabled.
void log(LogLevel level, std::string_view component, std::string_view event,
         std::initializer_list<LogField> fields = {});

}  // namespace opprentice::obs
