#include "obs/run_report.hpp"

#include <fstream>
#include <thread>

#include "obs/cost_attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics.hpp"

namespace opprentice::obs {
namespace {

// Compiler identification from predefined macros, most specific first
// (clang also defines __GNUC__).
std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + '.' +
         std::to_string(__clang_minor__) + '.' +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + '.' +
         std::to_string(__GNUC_MINOR__) + '.' +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string build_type() {
#ifdef OPPRENTICE_BUILD_TYPE
  return OPPRENTICE_BUILD_TYPE;
#elif defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

// Renders every registered counter whose name starts with `prefix` as a
// JSON object keyed by the suffix after the prefix.
void append_counters_with_prefix(std::string& out, std::string_view prefix) {
  auto& registry = Registry::instance();
  out += '{';
  bool first = true;
  for (const auto& name : registry.counter_names()) {
    if (name.rfind(prefix, 0) != 0) continue;
    if (!first) out += ", ";
    first = false;
    append_json_string(out, std::string_view(name).substr(prefix.size()));
    out += ": " + std::to_string(registry.counter(name).value());
  }
  out += '}';
}

}  // namespace

RunReport::RunReport(std::string tool, std::string command)
    : tool_(std::move(tool)), command_(std::move(command)) {}

void RunReport::set_seed(std::string_view name, std::uint64_t value) {
  for (auto& [key, v] : seeds_) {
    if (key == name) {
      v = value;
      return;
    }
  }
  seeds_.emplace_back(std::string(name), value);
}

void RunReport::add_stage(std::string_view name, double ms) {
  stages_.emplace_back(std::string(name), ms);
}

void RunReport::set_field_json(std::string_view key, std::string json) {
  for (auto& [k, v] : extra_) {
    if (k == key) {
      v = std::move(json);
      return;
    }
  }
  extra_.emplace_back(std::string(key), std::move(json));
}

void RunReport::set_field(std::string_view key, std::string_view value) {
  std::string json;
  append_json_string(json, value);
  set_field_json(key, std::move(json));
}

void RunReport::set_field(std::string_view key, double value) {
  std::string json;
  append_json_double(json, value);
  set_field_json(key, std::move(json));
}

void RunReport::set_field(std::string_view key, std::uint64_t value) {
  set_field_json(key, std::to_string(value));
}

void RunReport::set_field(std::string_view key, bool value) {
  set_field_json(key, value ? "true" : "false");
}

std::string RunReport::to_json() const {
  auto& registry = Registry::instance();
  std::string out = "{\n\"schema\": ";
  append_json_string(out, kSchema);
  out += ",\n\"tool\": ";
  append_json_string(out, tool_);
  out += ",\n\"command\": ";
  append_json_string(out, command_);

  out += ",\n\"build\": {\"compiler\": ";
  append_json_string(out, compiler_id());
  out += ", \"build_type\": ";
  append_json_string(out, build_type());
  out += ", \"cxx_standard\": " + std::to_string(__cplusplus) + "}";

  out += ",\n\"threads\": {\"configured\": " + std::to_string(threads_);
  out += ", \"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency()) + "}";

  out += ",\n\"seeds\": {";
  bool first = true;
  for (const auto& [name, value] : seeds_) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += "}";

  out += ",\n\"stages\": [";
  first = true;
  for (const auto& [name, ms] : stages_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": ";
    append_json_string(out, name);
    out += ", \"ms\": ";
    append_json_double(out, ms);
    out += '}';
  }
  out += first ? "]" : "\n]";

  out += ",\n\"counters\": {";
  first = true;
  for (const auto& name : registry.counter_names()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  ";
    append_json_string(out, name);
    out += ": " + std::to_string(registry.counter(name).value());
  }
  out += first ? "}" : "\n}";

  // Fault / repair / quarantine summaries (DESIGN.md §5f): the counters
  // each resilience layer maintains, grouped by layer.
  out += ",\n\"resilience\": {\"faults\": ";
  append_counters_with_prefix(out, "opprentice.faults.");
  out += ", \"ingest\": ";
  append_counters_with_prefix(out, "opprentice.ingest.");
  out += ", \"detector\": ";
  append_counters_with_prefix(out, "opprentice.detector.");
  out += ", \"net\": ";
  append_counters_with_prefix(out, "opprentice.net.");
  out += ", \"net_sources\": {";
  {
    bool g_first = true;
    for (const auto& name : registry.gauge_names()) {
      constexpr std::string_view kNetPrefix = "opprentice.net.";
      if (name.rfind(kNetPrefix, 0) != 0) continue;
      if (!g_first) out += ", ";
      g_first = false;
      append_json_string(out,
                         std::string_view(name).substr(kNetPrefix.size()));
      out += ": ";
      append_json_double(out, registry.gauge(name).value());
    }
  }
  out += '}';
  out += ", \"forest_train_failures\": " +
         std::to_string(
             registry.counter("opprentice.forest.train_failures").value());
  out += "}";

  out += ",\n\"attribution\": ";
  out += cost_rows_json(CostAttribution::instance().snapshot());

  out += ",\n\"flight_recorder\": ";
  out += FlightRecorder::instance().dump_json();

  out += ",\n\"extra\": {";
  first = true;
  for (const auto& [key, json] : extra_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  ";
    append_json_string(out, key);
    out += ": " + json;
  }
  out += first ? "}" : "\n}";
  out += "\n}\n";
  return out;
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace opprentice::obs
