#include "obs/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "util/mutex.hpp"

namespace opprentice::obs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};
std::atomic<std::ostream*> g_sink{nullptr};
// Serializes whole formatted lines into the sink so concurrent log()
// calls cannot interleave bytes (the sink pointer itself is atomic).
// opprentice-locks: level(log_write)=99
util::Mutex g_write_mutex;

// Reads OPPRENTICE_LOG once at static-initialization time.
struct EnvLog {
  EnvLog() {
    if (const char* env = std::getenv("OPPRENTICE_LOG");
        env != nullptr && *env != '\0') {
      set_log_level(parse_log_level(env));
    }
  }
};
const EnvLog g_env_log;

// Values containing spaces, quotes, '=' or control bytes are quoted so
// lines stay unambiguously splittable on spaces.
bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '"' || c == '=' ||
        static_cast<unsigned char>(c) < 0x21) {
      return true;
    }
  }
  return false;
}

void append_value(std::string& line, std::string_view v) {
  if (!needs_quoting(v)) {
    line += v;
    return;
  }
  line += '"';
  for (const char c : v) {
    if (c == '"' || c == '\\') line += '\\';
    if (c == '\n') {
      line += "\\n";
      continue;
    }
    line += c;
  }
  line += '"';
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text) {
  if (text == "error") return LogLevel::kError;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "info") return LogLevel::kInfo;
  if (text == "debug" || text == "1") return LogLevel::kDebug;
  return LogLevel::kOff;
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_sink(std::ostream* sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

std::string LogField::format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void log(LogLevel level, std::string_view component, std::string_view event,
         std::initializer_list<LogField> fields) {
  if (!log_enabled(level)) return;
  std::string line = "level=";
  line += to_string(level);
  line += " comp=";
  append_value(line, component);
  line += " event=";
  append_value(line, event);
  for (const auto& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    append_value(line, field.value);
  }
  line += '\n';

  util::MutexLock lock(g_write_mutex);
  if (std::ostream* sink = g_sink.load(std::memory_order_relaxed)) {
    // opprentice-locks: allow(blocking-under-lock) serializing the write is this lock's whole job; log_write is the highest level so nothing is held across it
    (*sink) << line << std::flush;
  } else {
    // opprentice-locks: allow(blocking-under-lock) same: the fallback sink write is the serialized section itself
    std::fputs(line.c_str(), stderr);
  }
}

}  // namespace opprentice::obs
