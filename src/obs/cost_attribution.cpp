#include "obs/cost_attribution.hpp"

#include <algorithm>

#include "obs/json_util.hpp"

namespace opprentice::obs {

CostAttribution& CostAttribution::instance() {
  // opprentice-check: allow(unguarded-static) Meyers singleton; every CostAttribution member is guarded by its own mutex_
  static CostAttribution attribution;
  return attribution;
}

CostSlot& CostAttribution::slot(std::string_view configuration) {
  util::MutexLock lock(mutex_);
  auto it = slots_.find(configuration);
  if (it == slots_.end()) {
    it = slots_
             .emplace(std::string(configuration),
                      std::make_unique<CostSlot>())
             .first;
  }
  return *it->second;
}

std::size_t CostAttribution::slot_count() const {
  util::MutexLock lock(mutex_);
  return slots_.size();
}

std::vector<CostRow> CostAttribution::snapshot() const {
  std::vector<CostRow> rows;
  {
    util::MutexLock lock(mutex_);
    rows.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) {
      const std::uint64_t n = slot->count();
      if (n == 0) continue;
      CostRow row;
      row.configuration = name;
      row.count = n;
      row.sum_us = slot->sum_us();
      row.max_us = slot->max_us();
      row.mean_us = row.sum_us / static_cast<double>(n);
      rows.push_back(std::move(row));
    }
  }
  double total = 0.0;
  for (const auto& row : rows) total += row.sum_us;
  for (auto& row : rows) row.share = total > 0.0 ? row.sum_us / total : 0.0;
  std::sort(rows.begin(), rows.end(),
            [](const CostRow& a, const CostRow& b) {
              if (a.sum_us != b.sum_us) return a.sum_us > b.sum_us;
              return a.configuration < b.configuration;
            });
  return rows;
}

void CostAttribution::reset_values() {
  util::MutexLock lock(mutex_);
  for (auto& [_, slot] : slots_) slot->reset();
}

std::string cost_rows_json(const std::vector<CostRow>& rows) {
  std::string out = "[";
  bool first = true;
  for (const auto& row : rows) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"configuration\": ";
    append_json_string(out, row.configuration);
    out += ", \"count\": " + std::to_string(row.count);
    out += ", \"sum_us\": ";
    append_json_double(out, row.sum_us);
    out += ", \"mean_us\": ";
    append_json_double(out, row.mean_us);
    out += ", \"max_us\": ";
    append_json_double(out, row.max_us);
    out += ", \"share\": ";
    append_json_double(out, row.share);
    out += '}';
  }
  out += first ? "]" : "\n]";
  return out;
}

}  // namespace opprentice::obs
