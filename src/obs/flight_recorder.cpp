#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <tuple>

#include "obs/json_util.hpp"

namespace opprentice::obs {

FlightRecorder& FlightRecorder::instance() {
  // opprentice-check: allow(unguarded-static) Meyers singleton; every FlightRecorder member is guarded by its own mutex_
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  util::MutexLock lock(mutex_);
  events_.reserve(capacity_);
}

void FlightRecorder::record_event(std::string_view category,
                                  std::string_view name, std::uint64_t key,
                                  std::string_view detail) {
  FlightEvent event{std::string(category), std::string(name), key,
                    std::string(detail)};
  util::MutexLock lock(mutex_);
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  events_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::size_t FlightRecorder::event_count() const {
  util::MutexLock lock(mutex_);
  return events_.size();
}

std::uint64_t FlightRecorder::dropped_count() const {
  util::MutexLock lock(mutex_);
  return dropped_;
}

std::vector<FlightEvent> FlightRecorder::sorted_events() const {
  std::vector<FlightEvent> out;
  {
    util::MutexLock lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return std::tie(a.category, a.name, a.key, a.detail) <
                     std::tie(b.category, b.name, b.key, b.detail);
            });
  return out;
}

std::string FlightRecorder::dump_json() const {
  const auto events = sorted_events();
  std::string out = "{\"capacity\": " + std::to_string(capacity_);
  out += ", \"dropped\": " + std::to_string(dropped_count());
  out += ", \"events\": [";
  bool first = true;
  for (const auto& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"category\": ";
    append_json_string(out, event.category);
    out += ", \"name\": ";
    append_json_string(out, event.name);
    out += ", \"key\": " + std::to_string(event.key);
    out += ", \"detail\": ";
    append_json_string(out, event.detail);
    out += '}';
  }
  out += first ? "]}" : "\n]}";
  return out;
}

std::string FlightRecorder::dump_text() const {
  std::string out;
  for (const auto& event : sorted_events()) {
    out += event.category;
    out += '.';
    out += event.name;
    out += " key=" + std::to_string(event.key);
    if (!event.detail.empty()) {
      out += ' ';
      out += event.detail;
    }
    out += '\n';
  }
  const std::uint64_t dropped = dropped_count();
  if (dropped > 0) {
    out += "(+" + std::to_string(dropped) + " events dropped to overflow)\n";
  }
  return out;
}

void FlightRecorder::clear() {
  util::MutexLock lock(mutex_);
  events_.clear();
  next_ = 0;
  dropped_ = 0;
}

}  // namespace opprentice::obs
