// Tiny locale-independent JSON rendering helpers shared by the metrics
// and trace emitters. Not a JSON library: append-only, caller owns the
// document structure.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace opprentice::obs {

// Appends `s` with JSON string escaping (no surrounding quotes).
inline void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

inline void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  append_json_escaped(out, s);
  out += '"';
}

// Shortest round-trippable double; JSON has no inf/nan, so those render
// as null.
inline void append_json_double(std::string& out, double v) {
  if (v != v || v > 1.7e308 || v < -1.7e308) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace opprentice::obs
