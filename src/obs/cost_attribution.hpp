// Per-configuration cost attribution (DESIGN.md §5h).
//
// The family histograms (metrics.hpp) answer "where does the extraction
// budget go per detector family"; this accumulator answers the sharper
// question ROADMAP item 2 needs: which of the 133 individual detector
// configurations burn it. One slot per configuration id holds
// count/sum/max of µs observations with relaxed atomics only — hot paths
// look their slot up once and then update it lock-free, exactly like the
// metrics instruments.
//
// Slots are registered by configuration name ("svd(rows=5,cols=60)");
// registration takes a mutex and the returned slot address is stable for
// the registry's lifetime. Snapshots are ordered by total cost
// (descending, name as the tiebreak), so the first K rows of a snapshot
// are the "top-K most expensive configs" table the CLI and bench print —
// the direct target list for the extraction-hot-path work.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace opprentice::obs {

// Lock-free accumulator for one configuration's observed cost.
class CostSlot {
 public:
  void record(double us) {
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + us,
                                       std::memory_order_relaxed)) {
    }
    double mx = max_.load(std::memory_order_relaxed);
    while (us > mx &&
           !max_.compare_exchange_weak(mx, us, std::memory_order_relaxed)) {
    }
  }

  // Batch variant: one timed pass of `points` points costing `total_us`.
  // Counts every point, adds the pass total to the sum, and folds the
  // pass's per-point mean into max (batch passes are not timed per point,
  // so max is "worst per-point cost at the granularity observed").
  void record_pass(double total_us, std::uint64_t points) {
    if (points == 0) return;
    count_.fetch_add(points, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + total_us,
                                       std::memory_order_relaxed)) {
    }
    const double per_point = total_us / static_cast<double>(points);
    double mx = max_.load(std::memory_order_relaxed);
    while (per_point > mx && !max_.compare_exchange_weak(
                                 mx, per_point, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_us() const { return sum_.load(std::memory_order_relaxed); }
  double max_us() const { return max_.load(std::memory_order_relaxed); }

  void reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// One row of a cost snapshot.
struct CostRow {
  std::string configuration;
  std::uint64_t count = 0;
  double sum_us = 0.0;
  double max_us = 0.0;
  double mean_us = 0.0;
  // sum_us / total sum across all rows of the snapshot, in [0, 1].
  double share = 0.0;
};

// Name -> CostSlot registry. Like obs::Registry: slots are created on
// first lookup and never destroyed before the registry.
class CostAttribution {
 public:
  // Process-wide instance used by the extractor instrumentation.
  static CostAttribution& instance();

  CostAttribution() = default;
  CostAttribution(const CostAttribution&) = delete;
  CostAttribution& operator=(const CostAttribution&) = delete;

  CostSlot& slot(std::string_view configuration);
  std::size_t slot_count() const;

  // All rows with at least one observation, ordered by sum_us descending
  // (name ascending as the deterministic tiebreak), with `share`
  // normalized against the snapshot's total.
  std::vector<CostRow> snapshot() const;

  // Zeroes every slot but keeps registrations (held references stay
  // valid). For tests and bench harnesses, like Registry::reset_values.
  void reset_values();

 private:
  // opprentice-locks: level(cost_ledger)=85
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<CostSlot>, std::less<>> slots_
      OPPRENTICE_GUARDED_BY(mutex_);
};

// Renders a snapshot as a JSON array (one object per row, snapshot
// order). Empty snapshot renders as "[]".
std::string cost_rows_json(const std::vector<CostRow>& rows);

}  // namespace opprentice::obs
