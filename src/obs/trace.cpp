#include "obs/trace.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace opprentice::obs {
namespace {

struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   // span start, relative to the trace epoch
  double dur_us = 0.0;  // span duration
  std::uint32_t tid = 0;
  std::string args_json;  // pre-rendered "key": value pairs, may be empty
};

// One global collector guarded by a mutex. Spans push on destruction;
// tracing implies a diagnostic run, so a short critical section per span
// is acceptable (the *disabled* path never touches this).
struct Collector {
  // opprentice-locks: level(trace_collector)=80
  util::Mutex mutex;
  std::vector<TraceEvent> events OPPRENTICE_GUARDED_BY(mutex);
  std::map<std::thread::id, std::uint32_t> thread_ids
      OPPRENTICE_GUARDED_BY(mutex);
  // Immutable after construction; spans read it without the lock.
  const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  std::uint32_t tid_for_current_thread() OPPRENTICE_REQUIRES(mutex) {
    const auto id = std::this_thread::get_id();
    const auto it = thread_ids.find(id);
    if (it != thread_ids.end()) return it->second;
    const auto tid = static_cast<std::uint32_t>(thread_ids.size() + 1);
    thread_ids.emplace(id, tid);
    return tid;
  }
};

Collector& collector() {
  // opprentice-check: allow(unguarded-static) Meyers singleton; Collector state is guarded by its own mutex
  static Collector c;
  return c;
}

std::atomic<bool> g_tracing{false};

// OPPRENTICE_TRACE=<path>: enable collection for the whole process and
// write the file when the process exits. Defined after collector() so its
// destructor (which touches the collector) runs before the collector is
// torn down.
struct EnvTrace {
  std::string path;
  EnvTrace() {
    if (const char* env = std::getenv("OPPRENTICE_TRACE");
        env != nullptr && *env != '\0') {
      path = env;
      enable_tracing();
    }
  }
  ~EnvTrace() {
    if (!path.empty()) write_trace(path);
  }
};
const EnvTrace g_env_trace;

}  // namespace

bool tracing_enabled() {
  return g_tracing.load(std::memory_order_relaxed);
}

void enable_tracing() {
  collector();  // force construction before first span
  g_tracing.store(true, std::memory_order_relaxed);
  set_detailed_timing(true);
}

void disable_tracing() { g_tracing.store(false, std::memory_order_relaxed); }

void clear_trace() {
  auto& c = collector();
  util::MutexLock lock(c.mutex);
  c.events.clear();
}

std::size_t trace_event_count() {
  auto& c = collector();
  util::MutexLock lock(c.mutex);
  return c.events.size();
}

bool write_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  auto& c = collector();
  util::MutexLock lock(c.mutex);
  std::string doc = "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& e : c.events) {
    if (!first) doc += ",\n";
    first = false;
    doc += "{\"name\": ";
    append_json_string(doc, e.name);
    doc += ", \"cat\": ";
    append_json_string(doc, e.category);
    doc += ", \"ph\": \"X\", \"ts\": ";
    append_json_double(doc, e.ts_us);
    doc += ", \"dur\": ";
    append_json_double(doc, e.dur_us);
    doc += ", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
    if (!e.args_json.empty()) {
      doc += ", \"args\": {" + e.args_json + '}';
    }
    doc += '}';
  }
  doc += "\n], \"displayTimeUnit\": \"ms\"}\n";
  out << doc;
  return static_cast<bool>(out);
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category) {
  if (!tracing_enabled()) return;
  active_ = true;
  name_ = name;
  category_ = category;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  auto& c = collector();
  TraceEvent e;
  e.name = std::move(name_);
  e.category = std::move(category_);
  e.dur_us = std::chrono::duration<double, std::micro>(end - start_).count();
  e.ts_us =
      std::chrono::duration<double, std::micro>(start_ - c.epoch).count();
  e.args_json = std::move(args_json_);
  util::MutexLock lock(c.mutex);
  e.tid = c.tid_for_current_thread();
  c.events.push_back(std::move(e));
}

void ScopedSpan::arg_impl(std::string_view key, double value) {
  if (!args_json_.empty()) args_json_ += ", ";
  append_json_string(args_json_, key);
  args_json_ += ": ";
  if (std::abs(value) < 9.0e15 && value == std::floor(value)) {
    args_json_ += std::to_string(static_cast<std::int64_t>(value));
  } else {
    append_json_double(args_json_, value);
  }
}

}  // namespace opprentice::obs
