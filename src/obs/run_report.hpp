// Run reports (DESIGN.md §5h): one schema-versioned JSON manifest per
// run, emitted by the CLI (--report <path>), the weekly-driver benches,
// and bench_sec58_performance --json.
//
// A run report is the self-describing record of what a run was and what
// it cost: build/compiler info, thread configuration, the seeds that make
// it reproducible, stage wall-times, a full counter snapshot, the
// fault/repair/quarantine summaries, the per-configuration cost
// attribution table (cost_attribution.hpp), and the flight-recorder dump
// (flight_recorder.hpp). `opprentice_perf` and CI consume these files;
// humans read them when a chaos run needs a postmortem.
//
// Schema "opprentice.run_report/1" — top-level keys, in order:
//   schema, tool, command, build{compiler, build_type, cxx_standard},
//   threads{configured, hardware_concurrency}, seeds{...}, stages[...],
//   counters{...}, resilience{faults, ingest, detector, net, net_sources,
//   forest_train_failures}, attribution[...], flight_recorder{...},
//   extra{...}
// Additive evolution only: consumers must tolerate new keys; removing or
// retyping one bumps the schema version.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace opprentice::obs {

class RunReport {
 public:
  static constexpr std::string_view kSchema = "opprentice.run_report/1";

  RunReport(std::string tool, std::string command);

  // Thread-pool degree the run was configured with (0 = hardware).
  void set_threads(std::size_t configured) { threads_ = configured; }

  // Named seeds that reproduce the run (forest seed, fault-plan seed...).
  void set_seed(std::string_view name, std::uint64_t value);

  // Appends one stage wall-time row; stages render in call order.
  void add_stage(std::string_view name, double ms);

  // Extra members under "extra", rendered in insertion order. Re-setting
  // a key overwrites in place.
  void set_field(std::string_view key, std::string_view value);
  // String literals would otherwise prefer the bool overload (pointer ->
  // bool is a standard conversion, const char* -> string_view is not).
  void set_field(std::string_view key, const char* value) {
    set_field(key, std::string_view(value));
  }
  void set_field(std::string_view key, double value);
  void set_field(std::string_view key, std::uint64_t value);
  void set_field(std::string_view key, bool value);

  // Pre-rendered JSON for one extra member (caller owns validity).
  void set_field_json(std::string_view key, std::string json);

  // Renders the manifest. Counters, attribution, and the flight recorder
  // are snapshotted from the process-wide registries at call time.
  std::string to_json() const;

  // to_json() to a file; false when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  std::string tool_;
  std::string command_;
  std::size_t threads_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> seeds_;
  std::vector<std::pair<std::string, double>> stages_;
  // key -> pre-rendered JSON value, insertion-ordered.
  std::vector<std::pair<std::string, std::string>> extra_;
};

// RAII stage timer: measures construction-to-destruction wall time and
// appends it to the report as one stage row. The report must outlive the
// timer.
class StageTimer {
 public:
  StageTimer(RunReport& report, std::string_view name)
      : report_(report), name_(name) {}
  ~StageTimer() { report_.add_stage(name_, watch_.elapsed_ms()); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  RunReport& report_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace opprentice::obs
