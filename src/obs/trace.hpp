// Trace spans: RAII timers that record Chrome trace-event JSON
// (chrome://tracing / https://ui.perfetto.dev loadable).
//
// Tracing is off by default; `ScopedSpan` then compiles down to one
// relaxed atomic load and no clock read. It turns on either through the
// environment (`OPPRENTICE_TRACE=<path>` collects for the whole process
// and writes the file at exit) or programmatically (`enable_tracing()` +
// `write_trace(path)`, which is what the CLI --trace flag does).
// Enabling tracing also enables detailed metrics timing (metrics.hpp).
//
// Span names are dot-separated like metric names ("weekly.window",
// "forest.train"); see DESIGN.md "Observability" for the span taxonomy.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace opprentice::obs {

bool tracing_enabled();

// Starts collecting span events (idempotent).
void enable_tracing();
// Stops collecting; already-collected events stay until clear_trace().
void disable_tracing();
// Drops every collected event.
void clear_trace();
// Number of completed span events collected so far.
std::size_t trace_event_count();

// Writes all collected events as a Chrome trace-event JSON object
// ({"traceEvents": [...]}) and returns false if the file cannot be
// written. Does not clear the buffer.
bool write_trace(const std::string& path);

// Always-on stopwatch for call sites that need the elapsed time as a
// value (for printing or for Histogram::record) regardless of whether
// tracing is enabled.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_us() const {
    // opprentice-hotpath: allow(clock) timing primitive; hot paths construct stopwatches only behind the detailed-timing gate
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now - start_).count();
  }
  double elapsed_ms() const { return elapsed_us() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// RAII span: records one complete ("ph":"X") trace event from
// construction to destruction. Inactive (no clock read, no allocation)
// when tracing is disabled at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      std::string_view category = "opprentice");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }

  // Attaches one numeric argument shown in the trace viewer ("args"
  // object). May be called repeatedly; no-op when the span is inactive.
  // Integral values render without a decimal point.
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  void arg(std::string_view key, T value) {
    if (active_) arg_impl(key, static_cast<double>(value));
  }

 private:
  void arg_impl(std::string_view key, double value);

  bool active_ = false;
  std::string name_;
  std::string category_;
  std::string args_json_;  // rendered "key": value pairs, comma-joined
  std::chrono::steady_clock::time_point start_;
};

}  // namespace opprentice::obs
