// Metrics registry: named counters, gauges, and exponential-bucket
// latency histograms with lock-cheap atomic updates.
//
// Registration (name lookup) takes a mutex; instruments returned by the
// registry have stable addresses for the lifetime of the registry, so hot
// paths look an instrument up once (e.g. in a function-local static) and
// then update it with relaxed atomics only. Snapshots render to
// Prometheus-style text or JSON; both are value-consistent when no writer
// is concurrently active (writers never block a snapshot, so a snapshot
// taken mid-update may lag individual instruments by one update).
//
// Naming convention (see DESIGN.md "Observability"): dot-separated
// lowercase path, unit as the last component for histograms
// ("opprentice.forest.train.ms", "opprentice.extract.family.ewma.us").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace opprentice::obs {

// Monotonically increasing count of events.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins scalar.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Exponential-bucket histogram for non-negative values (latencies).
//
// Bucket i covers (upper_bound(i-1), upper_bound(i)] with
// upper_bound(i) = 2^(kMinExponent + i); bucket 0 also absorbs
// everything <= 2^kMinExponent (including zero and negatives), and the
// last bucket is unbounded. With kMinExponent = -10 and 64 buckets the
// finite bounds span ~0.001 .. 2^52, which covers nanoseconds-to-hours
// whether the unit is microseconds or milliseconds.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 64;
  static constexpr int kMinExponent = -10;

  // Inclusive upper bound of bucket i; +inf for the last bucket.
  static double upper_bound(std::size_t i);
  // Exclusive lower bound of bucket i; 0 for bucket 0.
  static double lower_bound(std::size_t i);
  // Index of the bucket that receives `v`.
  static std::size_t bucket_index(double v);

  void record(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min_value() const;  // +inf when empty
  double max_value() const;  // 0 when empty
  double mean() const;
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Linearly interpolated quantile estimate from the bucket counts,
  // clamped to the observed [min, max]. q in [0, 1]; 0 when empty.
  double quantile(double q) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

// Name -> instrument registry. Instruments are created on first lookup
// and never destroyed before the registry; references stay valid.
class Registry {
 public:
  // Process-wide registry used by the library's instrumentation.
  static Registry& instance();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Registered names, sorted (for tests and renderers).
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  // Prometheus text exposition ('.' in names becomes '_').
  std::string prometheus_text() const;
  // JSON snapshot; schema documented in DESIGN.md "Observability".
  std::string json() const;

  // Zeroes every instrument but keeps them registered (references held by
  // call sites stay valid). Intended for tests and bench harnesses.
  void reset_values();

 private:
  // opprentice-locks: level(metrics_registry)=90
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      OPPRENTICE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      OPPRENTICE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      OPPRENTICE_GUARDED_BY(mutex_);
};

// Shorthands against the process-wide registry.
inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

// Writes a snapshot of the process-wide registry: Prometheus text when
// `path` ends in ".prom" or ".txt", JSON otherwise. Returns false when the
// file cannot be written.
bool write_metrics_file(const std::string& path);

// When false (the default), hot paths skip per-event clock reads and only
// maintain cheap relaxed counters; detailed latency histograms and spans
// stay empty. Enabled by tracing, by the CLI --metrics flag, and by the
// bench --json emitters.
bool detailed_timing_enabled();
void set_detailed_timing(bool enabled);

}  // namespace opprentice::obs
