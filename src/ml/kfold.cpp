#include "ml/kfold.hpp"

#include <stdexcept>

namespace opprentice::ml {

std::vector<FoldSplit> contiguous_folds(std::size_t num_rows, std::size_t k) {
  if (k < 2) throw std::invalid_argument("contiguous_folds: k must be >= 2");
  if (num_rows < k) {
    throw std::invalid_argument("contiguous_folds: fewer rows than folds");
  }
  std::vector<FoldSplit> folds;
  folds.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    folds.push_back({f * num_rows / k, (f + 1) * num_rows / k});
  }
  return folds;
}

std::vector<std::size_t> training_rows(const FoldSplit& fold,
                                       std::size_t num_rows) {
  std::vector<std::size_t> rows;
  rows.reserve(num_rows - (fold.test_end - fold.test_begin));
  for (std::size_t i = 0; i < num_rows; ++i) {
    if (i < fold.test_begin || i >= fold.test_end) rows.push_back(i);
  }
  return rows;
}

}  // namespace opprentice::ml
