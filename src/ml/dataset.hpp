// Column-major labeled dataset for the classifiers.
//
// Rows are data points, columns are detector-configuration severities
// (features), labels are the operators' 0/1 anomaly marks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace opprentice::ml {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::string> feature_names,
          std::vector<std::vector<double>> columns,
          std::vector<std::uint8_t> labels);

  std::size_t num_rows() const { return labels_.size(); }
  std::size_t num_features() const { return columns_.size(); }
  bool empty() const { return labels_.empty(); }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::vector<double>>& columns() const { return columns_; }
  std::span<const double> column(std::size_t f) const { return columns_[f]; }
  const std::vector<std::uint8_t>& labels() const { return labels_; }
  std::uint8_t label(std::size_t i) const { return labels_[i]; }

  double value(std::size_t row, std::size_t feature) const {
    return columns_[feature][row];
  }

  std::vector<double> row(std::size_t i) const;

  // Number of anomaly-labeled rows.
  std::size_t positives() const;

  // Rows [begin, end).
  Dataset slice(std::size_t begin, std::size_t end) const;

  // Appends rows of `tail` (same features required).
  void append(const Dataset& tail);

  // Keeps only the given feature columns, in the given order.
  Dataset select_features(const std::vector<std::size_t>& features) const;

  // Keeps only the given rows, in the given order.
  Dataset select_rows(const std::vector<std::size_t>& rows) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::vector<double>> columns_;  // [feature][row]
  std::vector<std::uint8_t> labels_;          // [row]
};

// Interface shared by all binary anomaly classifiers (§5.3.2 compares
// random forests against decision trees, logistic regression, linear SVM,
// and naive Bayes). score() is an anomaly score ascending with anomaly
// likelihood; probabilistic models return values in [0, 1].
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  virtual std::string name() const = 0;

  // Trains from scratch on the dataset. Throws std::invalid_argument if
  // the dataset is empty or single-class where the model cannot cope.
  virtual void train(const Dataset& data) = 0;

  virtual bool is_trained() const = 0;

  // Anomaly score of one feature vector (size == num_features at train).
  virtual double score(std::span<const double> features) const = 0;

  // Scores every row of the dataset. Virtual so models with a cheap
  // parallel batch path (the random forest) can override; the default
  // scores rows serially.
  virtual std::vector<double> score_all(const Dataset& data) const;
};

}  // namespace opprentice::ml
