// mRMR feature selection (max-relevance, min-redundancy; Peng et al.,
// TPAMI 2005 — the paper cites it in §5.3.2 and names feature selection as
// future work in §4.4.1: "it could introduce extra computation overhead,
// and the random forest works well by itself").
//
// Greedy selection: at each step pick the feature maximizing
//   MI(feature; label) - mean_{s in selected} MI(feature; s).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.hpp"

namespace opprentice::ml {

struct MrmrOptions {
  std::size_t bins = 16;  // quantile bins for the MI estimates
};

// Returns `k` feature indices in selection order. k is clamped to the
// number of features. The first pick is always the max-MI feature.
std::vector<std::size_t> mrmr_select(const Dataset& data, std::size_t k,
                                     const MrmrOptions& options = {});

// MI between two continuous features (both quantile-binned), in nats.
double feature_mutual_information(std::span<const double> a,
                                  std::span<const double> b,
                                  std::size_t bins = 16);

}  // namespace opprentice::ml
