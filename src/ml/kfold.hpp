// k-fold splitting over time-ordered data (§4.5.2's 5-fold
// cross-validation baseline for cThld prediction).
//
// The paper divides the historical training set into k *contiguous* subsets
// of the same length ("a historical training set is divided into k subsets
// of the same length"), so folds are contiguous blocks, not random rows.
#pragma once

#include <cstddef>
#include <vector>

namespace opprentice::ml {

struct FoldSplit {
  std::size_t test_begin = 0;  // [test_begin, test_end) is the held-out block
  std::size_t test_end = 0;
};

// Contiguous k-fold boundaries over `num_rows` rows. Throws
// std::invalid_argument when k < 2 or num_rows < k.
std::vector<FoldSplit> contiguous_folds(std::size_t num_rows, std::size_t k);

// Row indices of the training side of a fold (everything outside the
// held-out block, original order preserved).
std::vector<std::size_t> training_rows(const FoldSplit& fold,
                                       std::size_t num_rows);

}  // namespace opprentice::ml
