#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace opprentice::ml {

RandomForest::RandomForest(ForestOptions options) : options_(options) {}

void RandomForest::train(const Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument("RandomForest::train: empty dataset");
  }
  obs::ScopedSpan span("forest.train", "ml");
  span.arg("rows", data.num_rows());
  span.arg("features", data.num_features());
  span.arg("trees", options_.num_trees);
  obs::Stopwatch watch;

  trees_.clear();
  trained_features_ = data.num_features();

  const BinnedDataset binned(data);
  util::Rng rng(options_.seed);

  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.sample_fraction *
                                  static_cast<double>(data.num_rows())));
  const std::size_t mtry =
      options_.mtry != 0
          ? options_.mtry
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(data.num_features()))));

  // Per-tree seeds and bootstrap rows are drawn serially from the forest
  // RNG *before* dispatch, in tree order — the same stream a serial train
  // consumes — so the grown forest is bit-identical at any thread count.
  std::vector<TreeOptions> tree_options(options_.num_trees);
  std::vector<std::vector<std::size_t>> tree_rows(options_.num_trees);
  for (std::size_t t = 0; t < options_.num_trees; ++t) {
    TreeOptions& topt = tree_options[t];
    topt.max_depth = options_.max_depth;
    topt.min_samples_split = options_.min_samples_split;
    topt.mtry = mtry;
    topt.seed = rng.next_u64();

    // Bootstrap: rows sampled with replacement.
    tree_rows[t].resize(sample_size);
    for (auto& r : tree_rows[t]) r = rng.uniform_int(data.num_rows());
  }

  // Trees grow in parallel against the shared read-only BinnedDataset;
  // each task owns its pre-seeded options, row sample, and output slot.
  trees_.resize(options_.num_trees);
  util::parallel_for(options_.num_trees, [&](std::size_t t) {
    obs::ScopedSpan tree_span("forest.tree", "ml");
    tree_span.arg("index", t);
    DecisionTree tree(tree_options[t]);
    tree.train_binned(binned, std::move(tree_rows[t]));
    trees_[t] = std::move(tree);
  });

  obs::counter("opprentice.forest.trains").add();
  obs::histogram("opprentice.forest.train.ms").record(watch.elapsed_ms());
  if (obs::log_enabled(obs::LogLevel::kInfo)) {
    obs::log(obs::LogLevel::kInfo, "forest", "train_done",
             {{"rows", data.num_rows()},
              {"features", data.num_features()},
              {"trees", trees_.size()},
              {"ms", watch.elapsed_ms()}});
  }
}

double RandomForest::score(std::span<const double> features) const {
  if (trees_.empty()) {
    // opprentice-hotpath: allow(throw) not-trained guard; unreachable once the pipeline is set up
    throw std::logic_error("RandomForest::score: not trained");
  }
  // Hot path (§5.8: classification must stay << extraction): one relaxed
  // counter add always; clock reads only under detailed timing.
  // opprentice-hotpath: allow(cold-call) magic static: registry lookup runs once per process
  static obs::Counter& scores_counter = obs::counter("opprentice.forest.scores");
  const auto count_votes = [&] {
    std::size_t votes = 0;
    for (const auto& tree : trees_) {
      votes += tree.vote(features) ? 1 : 0;
    }
    return votes;
  };
  std::size_t votes = 0;
  if (obs::detailed_timing_enabled()) {
    // opprentice-hotpath: allow(cold-call) magic static: registry lookup runs once per process
    static obs::Histogram& score_histogram = obs::histogram("opprentice.forest.score.us");
    const obs::Stopwatch watch;
    votes = count_votes();
    score_histogram.record(watch.elapsed_us());
  } else {
    votes = count_votes();
  }
  scores_counter.add();
  return static_cast<double>(votes) / static_cast<double>(trees_.size());
}

bool RandomForest::classify(std::span<const double> features,
                            double cthld) const {
  return score(features) >= cthld;
}

std::vector<double> RandomForest::score_all(const Dataset& data) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::score_all: not trained");
  }
  obs::ScopedSpan span("forest.score_all", "ml");
  span.arg("rows", data.num_rows());
  std::vector<double> scores(data.num_rows(), 0.0);
  // Rows fan out across the pool; within a row the trees are evaluated
  // in fixed order and votes are an integer sum, so every score is
  // bit-identical at any thread count. Chunked: one row is ~50 tree
  // walks, far smaller than a dispatch.
  util::parallel_for(
      data.num_rows(),
      [&](std::size_t i) { scores[i] = score(data.row(i)); },
      /*grain=*/64);
  return scores;
}

std::vector<double> RandomForest::feature_importances() const {
  std::vector<double> total(trained_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importances();
    for (std::size_t f = 0; f < total.size() && f < imp.size(); ++f) {
      total[f] += imp[f];
    }
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

}  // namespace opprentice::ml
