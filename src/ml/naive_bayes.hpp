// Gaussian naive Bayes baseline (§5.3.2).
//
// Per class and feature, fit a Gaussian to the severity; score is the
// posterior anomaly probability under the independence assumption. Naive
// Bayes is the baseline most visibly hurt by redundant features (Fig 10):
// correlated detector configurations get counted as independent evidence.
#pragma once

#include <vector>

#include "ml/dataset.hpp"

namespace opprentice::ml {

class GaussianNaiveBayes final : public BinaryClassifier {
 public:
  GaussianNaiveBayes() = default;

  std::string name() const override { return "naive_bayes"; }
  void train(const Dataset& data) override;
  bool is_trained() const override { return !means_[0].empty(); }

  // Posterior P(anomaly | features) in [0, 1].
  double score(std::span<const double> features) const override;

 private:
  // Index 0 = normal class, 1 = anomaly class.
  std::vector<double> means_[2];
  std::vector<double> variances_[2];
  double log_prior_[2] = {0.0, 0.0};
};

}  // namespace opprentice::ml
