// Random forest (§4.4.2), the learning algorithm Opprentice deploys.
//
// An ensemble of fully grown CART trees; each tree trains on a bootstrap
// sample of the rows and evaluates only a random subset of features per
// node. The anomaly probability of a point is the fraction of trees that
// vote "anomaly" ("if 40 trees out of 100 classify the point into an
// anomaly, its anomaly probability is 40%"); the cThld applied to this
// probability is configured separately (§4.5).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"
#include "util/hotpath.hpp"

namespace opprentice::ml {

struct ForestOptions {
  std::size_t num_trees = 48;
  std::size_t max_depth = 64;
  std::size_t min_samples_split = 2;
  // Features tried per node; 0 = floor(sqrt(num_features)).
  std::size_t mtry = 0;
  // Bootstrap sample size as a fraction of the training rows.
  double sample_fraction = 1.0;
  std::uint64_t seed = 42;
};

class RandomForest final : public BinaryClassifier {
 public:
  explicit RandomForest(ForestOptions options = {});

  std::string name() const override { return "random_forest"; }

  void train(const Dataset& data) override;
  bool is_trained() const override { return !trees_.empty(); }

  // Fraction of trees voting anomaly, in [0, 1].
  OPPRENTICE_HOT double score(std::span<const double> features) const override;

  // Batch scoring, parallel over rows on the global thread pool. Votes
  // reduce per row in fixed tree order; results match serial score()
  // bit-for-bit at any thread count.
  std::vector<double> score_all(const Dataset& data) const override;

  // score >= cthld; 0.5 is the default majority vote.
  OPPRENTICE_HOT bool classify(std::span<const double> features,
                               double cthld = 0.5) const;

  std::size_t tree_count() const { return trees_.size(); }
  const std::vector<DecisionTree>& trees() const { return trees_; }

  // Mean per-tree gini importance, normalized to sum to 1. Shows which
  // detector configurations the forest actually relies on.
  std::vector<double> feature_importances() const;

  // Installs deserialized trees (see ml/serialize.hpp).
  void adopt_trees(std::vector<DecisionTree> trees,
                   std::size_t num_features) {
    trees_ = std::move(trees);
    trained_features_ = num_features;
  }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  std::size_t trained_features_ = 0;
};

}  // namespace opprentice::ml
