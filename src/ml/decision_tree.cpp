#include "ml/decision_tree.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <sstream>
#include <stack>
#include <stdexcept>

namespace opprentice::ml {
namespace {

constexpr std::size_t kNumBins = 256;

struct SplitCandidate {
  double gain = 0.0;
  std::size_t feature = 0;
  std::uint8_t code = 0;       // go left when bin <= code
  std::size_t left_count = 0;
  bool valid = false;
};

double gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p);  // 1 - p^2 - (1-p)^2
}

}  // namespace

DecisionTree::DecisionTree(TreeOptions options)
    : options_(options), rng_(options.seed) {}

void DecisionTree::train(const Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument("DecisionTree::train: empty dataset");
  }
  const BinnedDataset binned(data);
  std::vector<std::size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  train_binned(binned, std::move(rows));
}

void DecisionTree::train_binned(const BinnedDataset& data,
                                std::vector<std::size_t> rows) {
  if (rows.empty()) {
    throw std::invalid_argument("DecisionTree::train_binned: no rows");
  }
  nodes_.clear();
  importances_.assign(data.num_features(), 0.0);

  const std::size_t num_features = data.num_features();
  const std::size_t mtry =
      options_.mtry == 0 ? num_features
                         : std::min(options_.mtry, num_features);

  struct WorkItem {
    std::int32_t node;
    std::size_t begin;
    std::size_t end;
    std::size_t depth;
  };

  // Root.
  nodes_.push_back(TreeNode{});
  std::stack<WorkItem> work;
  work.push({0, 0, rows.size(), 0});

  std::array<std::uint32_t, kNumBins> hist_total{};
  std::array<std::uint32_t, kNumBins> hist_pos{};

  while (!work.empty()) {
    const WorkItem item = work.top();
    work.pop();
    const std::size_t n = item.end - item.begin;

    std::size_t positives = 0;
    for (std::size_t i = item.begin; i < item.end; ++i) {
      positives += data.label(rows[i]);
    }
    TreeNode& node = nodes_[static_cast<std::size_t>(item.node)];
    node.anomaly_fraction =
        static_cast<float>(positives) / static_cast<float>(n);

    const bool pure = positives == 0 || positives == n;
    if (pure || n < options_.min_samples_split ||
        item.depth >= options_.max_depth) {
      continue;  // leaf
    }

    // Random feature subset (random forests evaluate only a random subset
    // of features at each node, §4.4.2).
    std::vector<std::size_t> candidates =
        mtry == num_features
            ? [&] {
                std::vector<std::size_t> all(num_features);
                std::iota(all.begin(), all.end(), std::size_t{0});
                return all;
              }()
            : rng_.sample_without_replacement(num_features, mtry);

    const double parent_gini =
        gini(static_cast<double>(positives), static_cast<double>(n));
    SplitCandidate best;

    for (std::size_t f : candidates) {
      const auto& codes = data.codes(f);
      hist_total.fill(0);
      hist_pos.fill(0);
      std::uint8_t max_code = 0;
      for (std::size_t i = item.begin; i < item.end; ++i) {
        const std::size_t r = rows[i];
        const std::uint8_t c = codes[r];
        ++hist_total[c];
        hist_pos[c] += data.label(r);
        max_code = std::max(max_code, c);
      }
      // Prefix scan over bins: candidate split after each occupied bin.
      double left_total = 0.0, left_pos = 0.0;
      for (std::size_t b = 0; b < max_code; ++b) {
        left_total += hist_total[b];
        left_pos += hist_pos[b];
        if (left_total == 0.0) continue;
        const double right_total = static_cast<double>(n) - left_total;
        if (right_total == 0.0) break;
        const double right_pos = static_cast<double>(positives) - left_pos;
        const double weighted =
            (left_total * gini(left_pos, left_total) +
             right_total * gini(right_pos, right_total)) /
            static_cast<double>(n);
        const double gain = parent_gini - weighted;
        if (gain > best.gain + 1e-15) {
          best.gain = gain;
          best.feature = f;
          best.code = static_cast<std::uint8_t>(b);
          best.left_count = static_cast<std::size_t>(left_total);
          best.valid = true;
        }
      }
    }

    if (!best.valid) continue;  // all candidate features constant here

    importances_[best.feature] += best.gain * static_cast<double>(n);

    // Partition rows in place: left side first.
    const auto& codes = data.codes(best.feature);
    auto middle = std::partition(
        rows.begin() + static_cast<std::ptrdiff_t>(item.begin),
        rows.begin() + static_cast<std::ptrdiff_t>(item.end),
        [&](std::size_t r) { return codes[r] <= best.code; });
    const std::size_t mid =
        static_cast<std::size_t>(middle - rows.begin());

    const auto left_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(TreeNode{});
    const auto right_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(TreeNode{});

    TreeNode& parent = nodes_[static_cast<std::size_t>(item.node)];
    parent.feature = static_cast<std::int32_t>(best.feature);
    parent.threshold = data.binner(best.feature).upper_edge(best.code);
    parent.left = left_id;
    parent.right = right_id;

    work.push({left_id, item.begin, mid, item.depth + 1});
    work.push({right_id, mid, item.end, item.depth + 1});
  }
}

double DecisionTree::score(std::span<const double> features) const {
  if (nodes_.empty()) {
    // opprentice-hotpath: allow(throw) not-trained guard; unreachable once the forest is trained
    throw std::logic_error("DecisionTree::score: not trained");
  }
  std::size_t node = 0;
  for (;;) {
    const TreeNode& n = nodes_[node];
    if (n.feature < 0) return n.anomaly_fraction;
    const double v = features[static_cast<std::size_t>(n.feature)];
    node = static_cast<std::size_t>(v <= n.threshold ? n.left : n.right);
  }
}

std::size_t DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree.
  std::size_t max_depth = 0;
  std::stack<std::pair<std::size_t, std::size_t>> work;
  work.push({0, 1});
  while (!work.empty()) {
    const auto [node, d] = work.top();
    work.pop();
    max_depth = std::max(max_depth, d);
    const TreeNode& n = nodes_[node];
    if (n.feature >= 0) {
      work.push({static_cast<std::size_t>(n.left), d + 1});
      work.push({static_cast<std::size_t>(n.right), d + 1});
    }
  }
  return max_depth;
}

std::string DecisionTree::print_rules(
    const std::vector<std::string>& feature_names,
    std::size_t max_print_depth) const {
  std::ostringstream out;
  if (nodes_.empty()) return "(untrained tree)\n";

  struct PrintItem {
    std::size_t node;
    std::size_t depth;
    std::string prefix;
  };
  std::stack<PrintItem> work;
  work.push(PrintItem{0, 0, ""});
  while (!work.empty()) {
    auto [node, depth, prefix] = work.top();
    work.pop();
    const TreeNode& n = nodes_[node];
    const std::string indent(2 * depth, ' ');
    if (n.feature < 0 || depth >= max_print_depth) {
      out << indent << prefix
          << (n.anomaly_fraction >= 0.5f ? "-> Anomaly" : "-> Normal")
          << " (p=" << n.anomaly_fraction << ")\n";
      continue;
    }
    const auto f = static_cast<std::size_t>(n.feature);
    const std::string fname =
        f < feature_names.size() ? feature_names[f] : "feature";
    out << indent << prefix << "severity[" << fname << "]"
        << " split at " << n.threshold << ":\n";
    // Right pushed first so the "<=" branch prints first.
    work.push(PrintItem{static_cast<std::size_t>(n.right), depth + 1, ">  : "});
    work.push(PrintItem{static_cast<std::size_t>(n.left), depth + 1, "<= : "});
  }
  return out.str();
}

}  // namespace opprentice::ml
