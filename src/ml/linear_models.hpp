// Linear baselines of §5.3.2: logistic regression and linear SVM.
//
// Both standardize features internally (detector severities live on wildly
// different scales) and train with mini-batch-free SGD over epochs. These
// models are the ones Fig 10 shows degrading as irrelevant and redundant
// features are added; they are baselines, not the deployed learner.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"

namespace opprentice::ml {

// Per-feature z-score standardization fitted on the training set.
class FeatureScaler {
 public:
  void fit(const Dataset& data);
  // Transforms one raw row in place into its standardized copy.
  std::vector<double> transform(std::span<const double> row) const;
  bool fitted() const { return !means_.empty(); }

 private:
  std::vector<double> means_;
  std::vector<double> inv_stddevs_;
};

struct LinearModelOptions {
  std::size_t epochs = 30;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::uint64_t seed = 17;
};

class LogisticRegression final : public BinaryClassifier {
 public:
  explicit LogisticRegression(LinearModelOptions options = {});
  std::string name() const override { return "logistic_regression"; }
  void train(const Dataset& data) override;
  bool is_trained() const override { return !weights_.empty(); }
  // Sigmoid probability in [0, 1].
  double score(std::span<const double> features) const override;

 private:
  LinearModelOptions options_;
  FeatureScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

class LinearSvm final : public BinaryClassifier {
 public:
  explicit LinearSvm(LinearModelOptions options = {});
  std::string name() const override { return "linear_svm"; }
  void train(const Dataset& data) override;
  bool is_trained() const override { return !weights_.empty(); }
  // Margin squashed through a sigmoid so scores are comparable across
  // thresholds in [0, 1] (ranking, hence PR curves, is unaffected).
  double score(std::span<const double> features) const override;

 private:
  LinearModelOptions options_;
  FeatureScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace opprentice::ml
