#include "ml/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace opprentice::ml {
namespace {

constexpr const char* kMagic = "opprentice-forest";
constexpr const char* kVersion = "v1";

// Feature names may contain spaces in principle; encode them URL-style.
std::string encode_name(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c == ' ' || c == '%' || c == '\n') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// -1 for a non-hex character; no exceptions on a corrupt model file.
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string decode_name(const std::string& encoded) {
  std::string out;
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] == '%' && i + 2 < encoded.size()) {
      const int hi = hex_value(encoded[i + 1]);
      const int lo = hex_value(encoded[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    // A bare or malformed escape passes through unchanged rather than
    // throwing deep inside model loading.
    out += encoded[i];
  }
  return out;
}

}  // namespace

void save_forest(std::ostream& out, const RandomForest& forest,
                 const std::vector<std::string>& feature_names) {
  if (!forest.is_trained()) {
    throw std::logic_error("save_forest: forest is not trained");
  }
  out << kMagic << ' ' << kVersion << '\n';
  out << "trees " << forest.tree_count() << " features "
      << feature_names.size() << '\n';
  out << "names";
  for (const auto& name : feature_names) out << ' ' << encode_name(name);
  out << '\n';
  out.precision(17);
  for (const auto& tree : forest.trees()) {
    out << "tree " << tree.node_count() << '\n';
    for (const auto& node : tree.nodes()) {
      out << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
          << node.right << ' ' << node.anomaly_fraction << '\n';
    }
  }
}

LoadedForest load_forest(std::istream& in) {
  std::string magic, version, token;
  if (!(in >> magic >> version) || magic != kMagic) {
    throw std::runtime_error("load_forest: not an opprentice forest file");
  }
  if (version != kVersion) {
    throw std::runtime_error("load_forest: unsupported version " + version);
  }
  std::size_t num_trees = 0, num_features = 0;
  if (!(in >> token >> num_trees) || token != "trees" ||
      !(in >> token >> num_features) || token != "features") {
    throw std::runtime_error("load_forest: malformed header");
  }
  if (!(in >> token) || token != "names") {
    throw std::runtime_error("load_forest: missing feature names");
  }
  LoadedForest loaded;
  loaded.feature_names.reserve(num_features);
  for (std::size_t f = 0; f < num_features; ++f) {
    if (!(in >> token)) {
      throw std::runtime_error("load_forest: truncated feature names");
    }
    loaded.feature_names.push_back(decode_name(token));
  }

  std::vector<DecisionTree> trees;
  trees.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    std::size_t num_nodes = 0;
    if (!(in >> token >> num_nodes) || token != "tree") {
      throw std::runtime_error("load_forest: malformed tree header");
    }
    std::vector<TreeNode> nodes(num_nodes);
    for (auto& node : nodes) {
      if (!(in >> node.feature >> node.threshold >> node.left >>
            node.right >> node.anomaly_fraction)) {
        throw std::runtime_error("load_forest: truncated tree nodes");
      }
      const auto limit = static_cast<std::int32_t>(num_nodes);
      if (node.feature >= static_cast<std::int32_t>(num_features) ||
          node.left >= limit || node.right >= limit) {
        throw std::runtime_error("load_forest: node indices out of range");
      }
    }
    trees.emplace_back();
    trees.back().adopt_nodes(std::move(nodes));
  }
  loaded.forest.adopt_trees(std::move(trees), num_features);
  return loaded;
}

void save_forest_file(const std::string& path, const RandomForest& forest,
                      const std::vector<std::string>& feature_names) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_forest_file: cannot open " + path);
  save_forest(out, forest, feature_names);
}

LoadedForest load_forest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_forest_file: cannot open " + path);
  return load_forest(in);
}

}  // namespace opprentice::ml
