// Model persistence.
//
// A deployed Opprentice retrains weekly but classifies continuously; the
// trained forest must survive process restarts without retraining. The
// format is a line-oriented text format (versioned, human-inspectable):
//
//   opprentice-forest v1
//   trees <n> features <f>
//   tree <nodes>
//   <feature> <threshold> <left> <right> <anomaly_fraction>   (per node)
#pragma once

#include <iosfwd>
#include <string>

#include "ml/random_forest.hpp"

namespace opprentice::ml {

// Writes the trained forest. Throws std::logic_error if untrained.
void save_forest(std::ostream& out, const RandomForest& forest,
                 const std::vector<std::string>& feature_names);

struct LoadedForest {
  RandomForest forest;
  std::vector<std::string> feature_names;
};

// Reads a forest previously written by save_forest. Throws
// std::runtime_error on format errors or version mismatch.
LoadedForest load_forest(std::istream& in);

// File-path convenience wrappers.
void save_forest_file(const std::string& path, const RandomForest& forest,
                      const std::vector<std::string>& feature_names);
LoadedForest load_forest_file(const std::string& path);

}  // namespace opprentice::ml
