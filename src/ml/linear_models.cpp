#include "ml/linear_models.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace opprentice::ml {
namespace {

double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

// Class-balanced weight for the positive class: anomalies are rare
// (class imbalance, §3.2), so upweight them to keep gradients informative.
double positive_weight(const Dataset& data) {
  const auto pos = static_cast<double>(data.positives());
  const auto neg = static_cast<double>(data.num_rows()) - pos;
  if (pos <= 0.0) return 1.0;
  return neg / pos;
}

}  // namespace

void FeatureScaler::fit(const Dataset& data) {
  means_.resize(data.num_features());
  inv_stddevs_.resize(data.num_features());
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    means_[f] = util::mean(data.column(f));
    const double sd = util::stddev(data.column(f));
    inv_stddevs_[f] = (std::isnan(sd) || sd < 1e-12) ? 0.0 : 1.0 / sd;
    if (std::isnan(means_[f])) means_[f] = 0.0;
  }
}

std::vector<double> FeatureScaler::transform(
    std::span<const double> row) const {
  std::vector<double> out(row.size());
  for (std::size_t f = 0; f < row.size() && f < means_.size(); ++f) {
    const double v = std::isnan(row[f]) ? means_[f] : row[f];
    out[f] = (v - means_[f]) * inv_stddevs_[f];
  }
  return out;
}

LogisticRegression::LogisticRegression(LinearModelOptions options)
    : options_(options) {}

void LogisticRegression::train(const Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument("LogisticRegression::train: empty dataset");
  }
  scaler_.fit(data);
  weights_.assign(data.num_features(), 0.0);
  bias_ = 0.0;

  util::Rng rng(options_.seed);
  const double pos_weight = positive_weight(data);
  std::vector<std::size_t> order(data.num_rows());
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // Decaying step size; shuffled visiting order each epoch.
    const double lr =
        options_.learning_rate / (1.0 + static_cast<double>(epoch));
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_int(i)]);
    }
    std::vector<double> raw(data.num_features());
    for (std::size_t idx : order) {
      for (std::size_t f = 0; f < raw.size(); ++f) {
        raw[f] = data.value(idx, f);
      }
      const std::vector<double> x = scaler_.transform(raw);
      double z = bias_;
      for (std::size_t f = 0; f < x.size(); ++f) z += weights_[f] * x[f];
      const double y = data.label(idx) != 0 ? 1.0 : 0.0;
      const double w = y > 0.5 ? pos_weight : 1.0;
      const double grad = w * (sigmoid(z) - y);
      for (std::size_t f = 0; f < x.size(); ++f) {
        weights_[f] -= lr * (grad * x[f] + options_.l2 * weights_[f]);
      }
      bias_ -= lr * grad;
    }
  }
}

double LogisticRegression::score(std::span<const double> features) const {
  if (weights_.empty()) {
    throw std::logic_error("LogisticRegression::score: not trained");
  }
  const std::vector<double> x = scaler_.transform(features);
  double z = bias_;
  for (std::size_t f = 0; f < x.size() && f < weights_.size(); ++f) {
    z += weights_[f] * x[f];
  }
  return sigmoid(z);
}

LinearSvm::LinearSvm(LinearModelOptions options) : options_(options) {}

void LinearSvm::train(const Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument("LinearSvm::train: empty dataset");
  }
  scaler_.fit(data);
  weights_.assign(data.num_features(), 0.0);
  bias_ = 0.0;

  util::Rng rng(options_.seed);
  const double pos_weight = positive_weight(data);
  const double lambda = std::max(options_.l2, 1e-8);
  std::size_t step = 0;

  // Pegasos-style hinge-loss SGD.
  std::vector<double> raw(data.num_features());
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      ++step;
      const std::size_t idx = rng.uniform_int(data.num_rows());
      for (std::size_t f = 0; f < raw.size(); ++f) {
        raw[f] = data.value(idx, f);
      }
      const std::vector<double> x = scaler_.transform(raw);
      const double y = data.label(idx) != 0 ? 1.0 : -1.0;
      const double w = y > 0.0 ? pos_weight : 1.0;
      double margin = bias_;
      for (std::size_t f = 0; f < x.size(); ++f) margin += weights_[f] * x[f];
      margin *= y;

      const double lr = 1.0 / (lambda * static_cast<double>(step));
      for (double& wf : weights_) wf *= (1.0 - lr * lambda);
      if (margin < 1.0) {
        for (std::size_t f = 0; f < x.size(); ++f) {
          weights_[f] += lr * w * y * x[f];
        }
        bias_ += lr * w * y;
      }
    }
  }
}

double LinearSvm::score(std::span<const double> features) const {
  if (weights_.empty()) {
    throw std::logic_error("LinearSvm::score: not trained");
  }
  const std::vector<double> x = scaler_.transform(features);
  double margin = bias_;
  for (std::size_t f = 0; f < x.size() && f < weights_.size(); ++f) {
    margin += weights_[f] * x[f];
  }
  return sigmoid(margin);
}

}  // namespace opprentice::ml
