#include "ml/dataset.hpp"

#include <stdexcept>

namespace opprentice::ml {

Dataset::Dataset(std::vector<std::string> feature_names,
                 std::vector<std::vector<double>> columns,
                 std::vector<std::uint8_t> labels)
    : feature_names_(std::move(feature_names)),
      columns_(std::move(columns)),
      labels_(std::move(labels)) {
  if (feature_names_.size() != columns_.size()) {
    throw std::invalid_argument("Dataset: names/columns size mismatch");
  }
  for (const auto& col : columns_) {
    if (col.size() != labels_.size()) {
      throw std::invalid_argument("Dataset: column/labels size mismatch");
    }
  }
}

std::vector<double> Dataset::row(std::size_t i) const {
  std::vector<double> out(columns_.size());
  for (std::size_t f = 0; f < columns_.size(); ++f) out[f] = columns_[f][i];
  return out;
}

std::size_t Dataset::positives() const {
  std::size_t n = 0;
  for (std::uint8_t y : labels_) n += y;
  return n;
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > num_rows()) {
    throw std::out_of_range("Dataset::slice: bad range");
  }
  std::vector<std::vector<double>> cols;
  cols.reserve(columns_.size());
  for (const auto& col : columns_) {
    cols.emplace_back(col.begin() + static_cast<std::ptrdiff_t>(begin),
                      col.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return Dataset(feature_names_,
                 std::move(cols),
                 std::vector<std::uint8_t>(
                     labels_.begin() + static_cast<std::ptrdiff_t>(begin),
                     labels_.begin() + static_cast<std::ptrdiff_t>(end)));
}

void Dataset::append(const Dataset& tail) {
  if (tail.num_features() != num_features()) {
    throw std::invalid_argument("Dataset::append: feature count mismatch");
  }
  for (std::size_t f = 0; f < columns_.size(); ++f) {
    columns_[f].insert(columns_[f].end(), tail.columns_[f].begin(),
                       tail.columns_[f].end());
  }
  labels_.insert(labels_.end(), tail.labels_.begin(), tail.labels_.end());
}

Dataset Dataset::select_features(
    const std::vector<std::size_t>& features) const {
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  names.reserve(features.size());
  cols.reserve(features.size());
  for (std::size_t f : features) {
    if (f >= columns_.size()) {
      throw std::out_of_range("Dataset::select_features: bad index");
    }
    names.push_back(feature_names_[f]);
    cols.push_back(columns_[f]);
  }
  return Dataset(std::move(names), std::move(cols), labels_);
}

Dataset Dataset::select_rows(const std::vector<std::size_t>& rows) const {
  std::vector<std::vector<double>> cols(columns_.size());
  std::vector<std::uint8_t> labels;
  labels.reserve(rows.size());
  for (std::size_t f = 0; f < columns_.size(); ++f) {
    cols[f].reserve(rows.size());
  }
  for (std::size_t r : rows) {
    if (r >= num_rows()) {
      throw std::out_of_range("Dataset::select_rows: bad index");
    }
    for (std::size_t f = 0; f < columns_.size(); ++f) {
      cols[f].push_back(columns_[f][r]);
    }
    labels.push_back(labels_[r]);
  }
  return Dataset(feature_names_, std::move(cols), std::move(labels));
}

std::vector<double> BinaryClassifier::score_all(const Dataset& data) const {
  std::vector<double> scores(data.num_rows());
  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    for (std::size_t f = 0; f < data.num_features(); ++f) {
      row[f] = data.value(i, f);
    }
    scores[i] = score(row);
  }
  return scores;
}

}  // namespace opprentice::ml
