// Mutual information between a feature and the binary label.
//
// Fig 10 orders features by mutual information (a common feature-selection
// metric, [Peng et al. 2005]) before adding them one by one to each
// learning algorithm. We estimate MI by quantile-binning the feature.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace opprentice::ml {

// MI(feature; label) in nats, >= 0.
double mutual_information(std::span<const double> feature,
                          const std::vector<std::uint8_t>& labels,
                          std::size_t bins = 32);

// Feature indices of `data` sorted by descending mutual information with
// the label (the order Fig 10 adds features in).
std::vector<std::size_t> rank_features_by_mutual_information(
    const Dataset& data, std::size_t bins = 32);

}  // namespace opprentice::ml
