// CART decision tree (§4.4.2 "Preliminaries: decision trees").
//
// Gini-impurity splits, grown fully by default (the paper's random forest
// grows trees without pruning). Split finding runs on a BinnedDataset;
// the learned splits are translated back to raw-value thresholds so a
// trained tree scores unbinned feature vectors directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/binning.hpp"
#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace opprentice::ml {

struct TreeOptions {
  std::size_t max_depth = 64;         // effectively unlimited ("fully grown")
  std::size_t min_samples_split = 2;
  std::size_t mtry = 0;               // features tried per node; 0 = all
  std::uint64_t seed = 1;
};

struct TreeNode {
  std::int32_t feature = -1;  // -1 marks a leaf
  double threshold = 0.0;     // go left when value <= threshold
  std::int32_t left = -1;
  std::int32_t right = -1;
  float anomaly_fraction = 0.0f;  // positive-class fraction at this node
};

class DecisionTree final : public BinaryClassifier {
 public:
  explicit DecisionTree(TreeOptions options = {});

  std::string name() const override { return "decision_tree"; }

  // Bins the dataset internally and grows the tree on all rows.
  void train(const Dataset& data) override;

  // Grows the tree on the given rows of an already-binned dataset
  // (the random forest trains its trees through this entry point).
  void train_binned(const BinnedDataset& data,
                    std::vector<std::size_t> rows);

  bool is_trained() const override { return !nodes_.empty(); }

  // Leaf anomaly fraction of the feature vector.
  double score(std::span<const double> features) const override;

  // Majority-class vote (the forest aggregates these).
  bool vote(std::span<const double> features) const {
    return score(features) >= 0.5;
  }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

  // Total gini gain contributed by each feature (unnormalized).
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  // Human-readable if-then rules down to `max_print_depth` (Fig 5 prints a
  // compacted tree); `feature_names` supplies the detector names.
  std::string print_rules(const std::vector<std::string>& feature_names,
                          std::size_t max_print_depth = 3) const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }

  // Installs a deserialized node array (see ml/serialize.hpp). The nodes
  // must form a valid tree rooted at index 0.
  void adopt_nodes(std::vector<TreeNode> nodes) { nodes_ = std::move(nodes); }

 private:
  TreeOptions options_;
  std::vector<TreeNode> nodes_;
  std::vector<double> importances_;
  util::Rng rng_;
};

}  // namespace opprentice::ml
