#include "ml/naive_bayes.hpp"

#include <cmath>
#include <stdexcept>

namespace opprentice::ml {
namespace {

constexpr double kMinVariance = 1e-9;
constexpr double kLog2Pi = 1.8378770664093453;

}  // namespace

void GaussianNaiveBayes::train(const Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument("GaussianNaiveBayes::train: empty dataset");
  }
  const std::size_t nf = data.num_features();
  std::size_t counts[2] = {0, 0};
  for (std::size_t c = 0; c < 2; ++c) {
    means_[c].assign(nf, 0.0);
    variances_[c].assign(nf, 0.0);
  }
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    ++counts[data.label(i) != 0 ? 1 : 0];
  }
  // With a single-class training set, give the absent class one virtual
  // sample at the origin so scoring stays defined.
  for (std::size_t c = 0; c < 2; ++c) {
    log_prior_[c] = std::log(
        (static_cast<double>(counts[c]) + 1.0) /
        (static_cast<double>(data.num_rows()) + 2.0));
  }

  for (std::size_t f = 0; f < nf; ++f) {
    const auto col = data.column(f);
    double sum[2] = {0.0, 0.0};
    for (std::size_t i = 0; i < col.size(); ++i) {
      const std::size_t c = data.label(i) != 0 ? 1 : 0;
      if (!std::isnan(col[i])) sum[c] += col[i];
    }
    for (std::size_t c = 0; c < 2; ++c) {
      means_[c][f] =
          counts[c] > 0 ? sum[c] / static_cast<double>(counts[c]) : 0.0;
    }
    double sq[2] = {0.0, 0.0};
    for (std::size_t i = 0; i < col.size(); ++i) {
      const std::size_t c = data.label(i) != 0 ? 1 : 0;
      if (!std::isnan(col[i])) {
        const double d = col[i] - means_[c][f];
        sq[c] += d * d;
      }
    }
    for (std::size_t c = 0; c < 2; ++c) {
      variances_[c][f] =
          counts[c] > 0
              ? std::max(sq[c] / static_cast<double>(counts[c]), kMinVariance)
              : 1.0;
    }
  }
}

double GaussianNaiveBayes::score(std::span<const double> features) const {
  if (means_[0].empty()) {
    throw std::logic_error("GaussianNaiveBayes::score: not trained");
  }
  double log_like[2] = {log_prior_[0], log_prior_[1]};
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t f = 0; f < features.size() && f < means_[c].size();
         ++f) {
      if (std::isnan(features[f])) continue;
      const double d = features[f] - means_[c][f];
      log_like[c] -= 0.5 * (kLog2Pi + std::log(variances_[c][f]) +
                            d * d / variances_[c][f]);
    }
  }
  // Softmax over the two log-likelihoods.
  const double m = std::max(log_like[0], log_like[1]);
  const double e0 = std::exp(log_like[0] - m);
  const double e1 = std::exp(log_like[1] - m);
  return e1 / (e0 + e1);
}

}  // namespace opprentice::ml
