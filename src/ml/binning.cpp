#include "ml/binning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace opprentice::ml {

FeatureBinner FeatureBinner::fit(std::span<const double> column,
                                 std::size_t max_bins) {
  FeatureBinner binner;
  std::vector<double> sorted;
  sorted.reserve(column.size());
  for (double v : column) {
    if (!std::isnan(v)) sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.size() <= 1) return binner;  // constant column: single bin

  const std::size_t candidate_edges =
      std::min(max_bins - 1, sorted.size() - 1);
  binner.edges_.reserve(candidate_edges);
  // Edges at evenly spaced quantiles of the distinct values; midpoints
  // between neighbours make the split threshold unambiguous.
  for (std::size_t e = 1; e <= candidate_edges; ++e) {
    const std::size_t idx =
        e * (sorted.size() - 1) / (candidate_edges + 1) + 1;
    const double edge = (sorted[idx - 1] + sorted[idx]) / 2.0;
    if (binner.edges_.empty() || edge > binner.edges_.back()) {
      binner.edges_.push_back(edge);
    }
  }
  return binner;
}

std::uint8_t FeatureBinner::bin_of(double value) const {
  if (std::isnan(value)) return 0;  // missing severities sort lowest
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  return static_cast<std::uint8_t>(it - edges_.begin());
}

double FeatureBinner::upper_edge(std::uint8_t code) const {
  if (edges_.empty()) return std::numeric_limits<double>::infinity();
  const std::size_t idx = std::min<std::size_t>(code, edges_.size() - 1);
  return edges_[idx];
}

BinnedDataset::BinnedDataset(const Dataset& data, std::size_t max_bins)
    : labels_(data.labels()) {
  binners_.reserve(data.num_features());
  codes_.reserve(data.num_features());
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    binners_.push_back(FeatureBinner::fit(data.column(f), max_bins));
    std::vector<std::uint8_t> col(data.num_rows());
    const auto& binner = binners_.back();
    const auto column = data.column(f);
    for (std::size_t i = 0; i < column.size(); ++i) {
      col[i] = binner.bin_of(column[i]);
    }
    codes_.push_back(std::move(col));
  }
}

}  // namespace opprentice::ml
