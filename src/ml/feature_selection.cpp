#include "ml/feature_selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/binning.hpp"
#include "ml/mutual_information.hpp"

namespace opprentice::ml {

double feature_mutual_information(std::span<const double> a,
                                  std::span<const double> b,
                                  std::size_t bins) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  const FeatureBinner binner_a = FeatureBinner::fit(a, bins);
  const FeatureBinner binner_b = FeatureBinner::fit(b, bins);
  const std::size_t na = binner_a.num_bins();
  const std::size_t nb = binner_b.num_bins();

  std::vector<double> joint(na * nb, 0.0);
  std::vector<double> marg_a(na, 0.0), marg_b(nb, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) continue;
    const std::size_t ba = binner_a.bin_of(a[i]);
    const std::size_t bb = binner_b.bin_of(b[i]);
    joint[ba * nb + bb] += 1.0;
    marg_a[ba] += 1.0;
    marg_b[bb] += 1.0;
    total += 1.0;
  }
  if (total == 0.0) return 0.0;

  double mi = 0.0;
  for (std::size_t ba = 0; ba < na; ++ba) {
    if (marg_a[ba] == 0.0) continue;
    for (std::size_t bb = 0; bb < nb; ++bb) {
      const double j = joint[ba * nb + bb];
      if (j == 0.0 || marg_b[bb] == 0.0) continue;
      const double p_joint = j / total;
      mi += p_joint *
            std::log(p_joint * total * total / (marg_a[ba] * marg_b[bb]));
    }
  }
  return std::max(mi, 0.0);
}

std::vector<std::size_t> mrmr_select(const Dataset& data, std::size_t k,
                                     const MrmrOptions& options) {
  const std::size_t nf = data.num_features();
  k = std::min(k, nf);
  std::vector<std::size_t> selected;
  if (k == 0 || data.empty()) return selected;

  // Relevance: MI with the label.
  std::vector<double> relevance(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    relevance[f] =
        mutual_information(data.column(f), data.labels(), options.bins);
  }

  std::vector<bool> taken(nf, false);
  std::vector<double> redundancy_sum(nf, 0.0);

  // First pick: maximum relevance.
  std::size_t best = static_cast<std::size_t>(
      std::max_element(relevance.begin(), relevance.end()) -
      relevance.begin());
  selected.push_back(best);
  taken[best] = true;

  while (selected.size() < k) {
    // Update redundancy sums with the feature just selected.
    const auto last = selected.back();
    for (std::size_t f = 0; f < nf; ++f) {
      if (!taken[f]) {
        redundancy_sum[f] += feature_mutual_information(
            data.column(f), data.column(last), options.bins);
      }
    }
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_f = nf;
    for (std::size_t f = 0; f < nf; ++f) {
      if (taken[f]) continue;
      const double score =
          relevance[f] -
          redundancy_sum[f] / static_cast<double>(selected.size());
      if (score > best_score) {
        best_score = score;
        best_f = f;
      }
    }
    if (best_f == nf) break;
    selected.push_back(best_f);
    taken[best_f] = true;
  }
  return selected;
}

}  // namespace opprentice::ml
