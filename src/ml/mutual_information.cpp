#include "ml/mutual_information.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "ml/binning.hpp"

namespace opprentice::ml {

double mutual_information(std::span<const double> feature,
                          const std::vector<std::uint8_t>& labels,
                          std::size_t bins) {
  const std::size_t n = std::min(feature.size(), labels.size());
  if (n == 0) return 0.0;

  const FeatureBinner binner = FeatureBinner::fit(feature, bins);
  // joint[b][c]: count of (bin b, class c).
  std::vector<std::array<double, 2>> joint(binner.num_bins(), {0.0, 0.0});
  double class_total[2] = {0.0, 0.0};
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(feature[i])) continue;
    const std::uint8_t b = binner.bin_of(feature[i]);
    const std::size_t c = labels[i] != 0 ? 1 : 0;
    joint[b][c] += 1.0;
    class_total[c] += 1.0;
    total += 1.0;
  }
  if (total == 0.0) return 0.0;

  double mi = 0.0;
  for (const auto& cell : joint) {
    const double bin_total = cell[0] + cell[1];
    if (bin_total == 0.0) continue;
    for (std::size_t c = 0; c < 2; ++c) {
      if (cell[c] == 0.0 || class_total[c] == 0.0) continue;
      const double p_joint = cell[c] / total;
      const double p_bin = bin_total / total;
      const double p_class = class_total[c] / total;
      mi += p_joint * std::log(p_joint / (p_bin * p_class));
    }
  }
  return std::max(mi, 0.0);
}

std::vector<std::size_t> rank_features_by_mutual_information(
    const Dataset& data, std::size_t bins) {
  std::vector<double> mi(data.num_features());
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    mi[f] = mutual_information(data.column(f), data.labels(), bins);
  }
  std::vector<std::size_t> order(data.num_features());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return mi[a] > mi[b]; });
  return order;
}

}  // namespace opprentice::ml
