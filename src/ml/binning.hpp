// Quantile binning for histogram-based tree training.
//
// Tree split finding only needs the *order* of feature values, so we
// quantize each column to at most 255 quantile bins once per training run
// (LightGBM-style). Split search then costs O(rows + bins) per feature per
// node instead of O(rows log rows), which keeps fully-grown forests cheap
// on the single-core evaluation host.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace opprentice::ml {

inline constexpr std::size_t kMaxBins = 255;

// Per-feature quantile bin edges. A value v maps to the smallest bin b
// with v <= edges[b]; values above the last edge map to the last bin.
class FeatureBinner {
 public:
  // Builds edges from the column's value distribution.
  static FeatureBinner fit(std::span<const double> column,
                           std::size_t max_bins = kMaxBins);

  std::uint8_t bin_of(double value) const;

  // Real-valued threshold separating bin <= code from bin > code; used to
  // translate a bin split back into a raw-value split for prediction.
  double upper_edge(std::uint8_t code) const;

  std::size_t num_bins() const { return edges_.size() + 1; }

 private:
  std::vector<double> edges_;  // ascending, distinct
};

// A dataset quantized for tree training. Keeps a reference-free copy of
// the labels and the code matrix.
class BinnedDataset {
 public:
  explicit BinnedDataset(const Dataset& data,
                         std::size_t max_bins = kMaxBins);

  std::size_t num_rows() const { return labels_.size(); }
  std::size_t num_features() const { return codes_.size(); }

  const std::vector<std::uint8_t>& codes(std::size_t feature) const {
    return codes_[feature];
  }
  std::uint8_t label(std::size_t row) const { return labels_[row]; }
  const FeatureBinner& binner(std::size_t feature) const {
    return binners_[feature];
  }

 private:
  std::vector<FeatureBinner> binners_;
  std::vector<std::vector<std::uint8_t>> codes_;  // [feature][row]
  std::vector<std::uint8_t> labels_;
};

}  // namespace opprentice::ml
