// Labeling-time cost model (reproduces Fig 14 and the §5.7 comparison).
//
// §5.7: "the labeling time of one-month data basically increases as the
// number of anomalous windows in that month" and totals 16 / 17 / 6 minutes
// for PV / #SR / SRT. We model a session as: a fixed per-month navigation
// sweep (scrolling through the zoomed-out view) plus a per-window cost
// (zoom in, position, drag) with small random variation.
#pragma once

#include <cstdint>
#include <vector>

#include "timeseries/labels.hpp"
#include "timeseries/time_series.hpp"

namespace opprentice::labeling {

struct LabelingCostModel {
  double sweep_seconds_per_week = 16.0;  // zoomed-out pass over the data
  double seconds_per_window = 8.0;       // zoom + drag for one window
  double per_window_jitter = 0.35;       // relative variation
  std::uint64_t seed = 5;
};

struct MonthlyLabelingCost {
  std::size_t month_index = 0;
  std::size_t anomalous_windows = 0;
  double minutes = 0.0;
};

// Splits the series into 4-week "months" and estimates the labeling time
// of each month given its labeled windows.
std::vector<MonthlyLabelingCost> estimate_monthly_costs(
    const ts::TimeSeries& series, const ts::LabelSet& labels,
    const LabelingCostModel& model = {});

// Total labeling time in minutes across all months.
double total_minutes(const std::vector<MonthlyLabelingCost>& months);

}  // namespace opprentice::labeling
