// Operator labeling model.
//
// The paper's operators label anomaly windows with a GUI tool (§4.2); the
// labels carry boundary noise ("the boundaries of an anomalous window are
// often extended or narrowed when labeling") and the paper relies on the
// learner being robust to it. We model an operator as a transformation of
// ground-truth windows: boundary jitter, occasional misses of faint
// anomalies, and occasional merging of near-by windows.
#pragma once

#include <cstdint>

#include "timeseries/labels.hpp"

namespace opprentice::labeling {

struct OperatorModel {
  // Each window boundary is shifted by a uniform number of points in
  // [-boundary_jitter, +boundary_jitter].
  std::size_t boundary_jitter = 2;

  // Probability that a window is skipped entirely (operator misses it).
  double miss_probability = 0.02;

  // Windows closer than this many points are labeled as one drag action.
  std::size_t merge_gap = 2;

  std::uint64_t seed = 99;
};

// Applies the operator model to ground-truth windows, producing the labels
// Opprentice actually trains on. `series_size` clamps the jittered windows.
ts::LabelSet simulate_labeling(const ts::LabelSet& ground_truth,
                               std::size_t series_size,
                               const OperatorModel& model);

}  // namespace opprentice::labeling
