#include "labeling/labeling_session.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace opprentice::labeling {

std::vector<MonthlyLabelingCost> estimate_monthly_costs(
    const ts::TimeSeries& series, const ts::LabelSet& labels,
    const LabelingCostModel& model) {
  util::Rng rng(model.seed);
  const std::size_t month_points = 4 * series.points_per_week();
  std::vector<MonthlyLabelingCost> out;
  if (month_points == 0 || series.empty()) return out;

  const std::size_t months =
      (series.size() + month_points - 1) / month_points;
  for (std::size_t m = 0; m < months; ++m) {
    const std::size_t begin = m * month_points;
    const std::size_t end = std::min(begin + month_points, series.size());
    const ts::LabelSet month_labels = labels.slice(begin, end);

    const double weeks = static_cast<double>(end - begin) /
                         static_cast<double>(series.points_per_week());
    double seconds = model.sweep_seconds_per_week * weeks;
    for (std::size_t w = 0; w < month_labels.window_count(); ++w) {
      seconds += model.seconds_per_window *
                 (1.0 + rng.uniform(-model.per_window_jitter,
                                    model.per_window_jitter));
    }
    out.push_back({m, month_labels.window_count(), seconds / 60.0});
  }
  return out;
}

double total_minutes(const std::vector<MonthlyLabelingCost>& months) {
  double total = 0.0;
  for (const auto& m : months) total += m.minutes;
  return total;
}

}  // namespace opprentice::labeling
