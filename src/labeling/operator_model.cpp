#include "labeling/operator_model.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace opprentice::labeling {

ts::LabelSet simulate_labeling(const ts::LabelSet& ground_truth,
                               std::size_t series_size,
                               const OperatorModel& model) {
  util::Rng rng(model.seed);
  ts::LabelSet out;

  // First pass: merge windows the operator would label with a single drag.
  std::vector<ts::LabelWindow> merged;
  for (const auto& w : ground_truth.windows()) {
    if (!merged.empty() &&
        w.begin <= merged.back().end + model.merge_gap) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }

  const auto jitter = [&](std::size_t x) -> std::size_t {
    const std::size_t j = model.boundary_jitter;
    if (j == 0) return x;
    const std::int64_t delta =
        static_cast<std::int64_t>(rng.uniform_int(2 * j + 1)) -
        static_cast<std::int64_t>(j);
    const std::int64_t shifted = static_cast<std::int64_t>(x) + delta;
    return static_cast<std::size_t>(std::clamp<std::int64_t>(
        shifted, 0, static_cast<std::int64_t>(series_size)));
  };

  for (const auto& w : merged) {
    if (rng.uniform() < model.miss_probability) continue;
    std::size_t begin = jitter(w.begin);
    std::size_t end = jitter(w.end);
    if (begin >= end) {
      // Never let jitter erase a window the operator did label.
      begin = w.begin;
      end = std::max(w.end, w.begin + 1);
      end = std::min(end, series_size);
    }
    out.add_window({begin, end});
  }
  return out;
}

}  // namespace opprentice::labeling
