// Fleet engine: one process, tens of thousands of KPI streams
// (DESIGN.md §5i, ROADMAP item 1).
//
// The paper's pipeline detects anomalies on one KPI; operators watch
// fleets. This engine multiplexes the whole per-series pipeline —
// StreamingExtractor, random forest, cThld history, quarantine flags —
// over any number of series, keyed by series id in a sharded concurrent
// registry (series_registry.hpp), with retrains staggered by a
// deterministic per-series phase (retrain_scheduler.hpp) so training
// load spreads across week boundaries instead of spiking.
//
// Determinism contract: every output — scores, trained forests, flight
// events, repair counts — is a pure function of (series ids, input
// values, fault plan, options). Each series' state is touched under its
// own mutex and its fault keys are salted with util::stable_id_hash(id),
// so runs are bit-identical at any thread count and no series can
// perturb another's bytes; the fleet sweep in parallel_equivalence_test
// asserts exactly this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/retrain_scheduler.hpp"
#include "core/series_registry.hpp"
#include "core/weekly_driver.hpp"
#include "detectors/feature_extractor.hpp"
#include "detectors/registry.hpp"
#include "eval/metrics.hpp"
#include "ml/random_forest.hpp"
#include "timeseries/repair.hpp"

namespace opprentice::core {

// Builds a series' detector set. The default (nullptr factory) is the
// paper's standard 133 configurations; fleet-scale deployments install a
// cheaper set (fleet_lite_configurations) to hit netdata-like per-metric
// budgets.
using DetectorFactory = std::function<std::vector<detectors::DetectorPtr>(
    const detectors::SeriesContext&)>;

// The cheap short-window families only (diff, simple_ma, ewma — nothing
// warming up longer than one day): ~12 configurations instead of 133,
// for 10k+-series fleets where per-point cost and RSS per series
// dominate.
std::vector<detectors::DetectorPtr> fleet_lite_configurations(
    const detectors::SeriesContext& ctx);

struct FleetOptions {
  std::size_t shard_count = 64;
  std::uint64_t scheduler_seed = 0x0FF1CE;
  // Points between retrains of one series; 0 means one week of points
  // (ctx.points_per_week).
  std::size_t retrain_interval = 0;
  // Per-series feature/label rows kept for training; 0 keeps everything
  // (single-series semantics). Fleet deployments bound this to a few
  // retrain intervals.
  std::size_t history_capacity = 0;
  // Consecutive retrain failures before the series is quarantined.
  std::size_t quarantine_after = 3;
  detectors::SeriesContext ctx{1440, 10080};
  ml::ForestOptions forest;
  eval::AccuracyPreference preference{0.66, 0.66};
  double cthld_ewma_alpha = 0.8;
  detectors::FaultBoundary boundary;
  DetectorFactory detector_factory;  // nullptr -> standard_configurations
};

// One point's verdict for one series.
struct FleetDetection {
  double value = 0.0;
  double score = 0.0;
  double cthld = 0.5;
  bool is_anomaly = false;
  // False while the series has no trained forest, is still warming up,
  // or is quarantined — callers must not treat score as meaningful then.
  bool classified = false;
};

// Per-series bookkeeping snapshot (stats()).
struct FleetSeriesStats {
  std::string id;
  std::size_t phase = 0;
  std::size_t points_seen = 0;
  std::size_t labeled_until = 0;
  std::size_t retrains = 0;
  std::size_t train_failures = 0;
  bool trained = false;
  bool quarantined = false;
  ts::RepairReport repairs;  // accumulated over every ingest_raw call
};

// What one ingest_raw call did: this chunk's repair report plus the
// number of repaired points actually fed through the pipeline — the
// exact per-series attribution the network ingestion server (src/net)
// accounts against its wire counters.
struct IngestOutcome {
  ts::RepairReport repairs;
  std::size_t points_fed = 0;
};

class FleetSeries;  // opaque; all access goes through the engine
using SeriesHandle = std::shared_ptr<FleetSeries>;

class FleetEngine {
 public:
  explicit FleetEngine(FleetOptions options);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  const FleetOptions& options() const { return options_; }
  const RetrainScheduler& scheduler() const { return scheduler_; }

  // Returns the series, creating its streaming state on first sight
  // (idempotent; concurrent callers get the same state).
  SeriesHandle add_series(const std::string& id);
  SeriesHandle find_series(std::string_view id) const;
  bool remove_series(std::string_view id);
  std::size_t series_count() const;
  std::vector<std::string> series_ids() const;  // globally sorted

  // Feeds one point to one series: extraction, scoring against the
  // current forest and predicted cThld, and — when the series' staggered
  // phase comes up — a retrain on its buffered labeled history.
  FleetDetection feed(const SeriesHandle& series, double value);

  // One synchronized fleet tick: values[i] goes to series[i], verdicts
  // land in out[i]. Fanned over the global thread pool; handles must be
  // distinct. Bit-identical at any thread count.
  void feed_tick(std::span<const SeriesHandle> series,
                 std::span<const double> values,
                 std::span<FleetDetection> out);

  // Raw dirty stream for one series: ingest fault injection (salted per
  // series), repair_series under `policy`, then every repaired value is
  // fed. Returns this call's repair report and fed-point count; the
  // running per-series repair total is in stats().repairs.
  IngestOutcome ingest_raw(const SeriesHandle& series,
                           std::vector<ts::RawPoint> points,
                           std::int64_t interval_seconds,
                           ts::RepairPolicy policy);

  // Operator labels for rows [begin, begin + labels.size()) in global
  // point indices. Rows already dropped from the bounded history are
  // ignored; future rows are clamped.
  void ingest_labels(const SeriesHandle& series,
                     std::span<const std::uint8_t> labels, std::size_t begin);

  // Manual quarantine: a quarantined series consumes no points and
  // classifies nothing until released.
  void set_quarantined(const SeriesHandle& series, bool quarantined);

  FleetSeriesStats stats(const SeriesHandle& series) const;

  // The serialized trained forest (ml/serialize.hpp text format), or ""
  // when untrained — the byte string the determinism sweep compares.
  std::string forest_fingerprint(const SeriesHandle& series) const;

  // ---- Batch protocol client (the weekly driver's loop) ----
  //
  // Runs the paper's I1 incremental protocol on a precomputed dataset:
  // for each test week, train on all prior rows and score the week.
  // core::run_weekly_incremental delegates here, making the single-series
  // driver a thin client of the engine.
  IncrementalRunResult run_incremental(const ml::Dataset& data,
                                       std::size_t points_per_week,
                                       std::size_t warmup,
                                       const DriverOptions& options) const;

 private:
  FleetOptions options_;
  RetrainScheduler scheduler_;
  SeriesRegistry<FleetSeries> registry_;
};

// Fault-contained forest training shared by the fleet engine and the
// strategy drivers (DESIGN.md §5f): trains on rows
// [max(train_begin, warmup), train_end), returns nullopt when the window
// has no positive labels or training fails (injected or genuine) — the
// caller degrades instead of aborting. The injection key is the training
// window (XORed with `key_salt` for per-series streams), so the
// fired-event set is a pure function of schedule + plan.
std::optional<ml::RandomForest> train_forest_guarded(
    const ml::Dataset& data, std::size_t warmup, std::size_t train_begin,
    std::size_t train_end, const ml::ForestOptions& options,
    std::uint64_t key_salt = 0);

// Deterministic synthetic KPI value for fleet benches and the CLI fleet
// command: a daily-seasonal wave plus hash noise, a pure function of
// (series salt, point index, points_per_day).
double synthetic_fleet_value(std::uint64_t salt, std::size_t index,
                             std::size_t points_per_day);

}  // namespace opprentice::core
