#include "core/transfer.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace opprentice::core {

void SeverityNormalizer::fit(const ml::Dataset& reference) {
  inv_scales_.resize(reference.num_features());
  for (std::size_t f = 0; f < reference.num_features(); ++f) {
    const double scale = util::quantile(reference.column(f), 0.98);
    inv_scales_[f] =
        (std::isnan(scale) || scale < 1e-12) ? 0.0 : 1.0 / scale;
  }
}

ml::Dataset SeverityNormalizer::transform(const ml::Dataset& data) const {
  if (!is_fitted()) {
    throw std::logic_error("SeverityNormalizer::transform: not fitted");
  }
  if (data.num_features() != inv_scales_.size()) {
    throw std::logic_error(
        "SeverityNormalizer::transform: feature count mismatch");
  }
  std::vector<std::vector<double>> cols;
  cols.reserve(data.num_features());
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    std::vector<double> col(data.column(f).begin(), data.column(f).end());
    for (double& v : col) {
      if (!std::isnan(v)) v *= inv_scales_[f];
    }
    cols.push_back(std::move(col));
  }
  return ml::Dataset(data.feature_names(), std::move(cols), data.labels());
}

void SeverityNormalizer::transform_row(std::vector<double>& row) const {
  for (std::size_t f = 0; f < row.size() && f < inv_scales_.size(); ++f) {
    if (!std::isnan(row[f])) row[f] *= inv_scales_[f];
  }
}

}  // namespace opprentice::core
