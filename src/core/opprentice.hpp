// The user-facing Opprentice system (Fig 3).
//
// Wires the pieces together the way the paper deploys them:
//   - numerous detector configurations extract features from each
//     incoming point (Fig 3(b));
//   - a random forest classifier, retrained periodically on all labeled
//     history, classifies the point (Fig 3(a));
//   - the cThld applied to the forest's anomaly probability is predicted
//     by an EWMA over the weekly best cThlds (§4.5.2).
//
// Operators interact in exactly two ways: specify the accuracy preference
// up front, and periodically label the data seen so far.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cthld.hpp"
#include "detectors/feature_extractor.hpp"
#include "eval/metrics.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "timeseries/labels.hpp"
#include "timeseries/time_series.hpp"

namespace opprentice::core {

struct OpprenticeConfig {
  eval::AccuracyPreference preference;  // "recall >= R and precision >= P"
  ml::ForestOptions forest;
  double cthld_ewma_alpha = 0.8;
};

class Opprentice {
 public:
  // Uses the standard 133 detector configurations for the given calendar.
  Opprentice(const detectors::SeriesContext& ctx, OpprenticeConfig config);

  // Custom detector set (e.g. with user-registered detectors plugged in).
  Opprentice(std::vector<detectors::DetectorPtr> detector_set,
             const detectors::SeriesContext& ctx, OpprenticeConfig config);

  // Ingests historical data with its operator labels and trains the first
  // classifier. The label set indexes into `history`.
  void bootstrap(const ts::TimeSeries& history, const ts::LabelSet& labels);

  struct Detection {
    double value = 0.0;
    double score = 0.0;      // anomaly probability from the forest
    double cthld = 0.5;      // threshold applied
    bool is_anomaly = false;
    bool classified = false;  // false during warm-up / before first training
  };

  // Feeds one incoming point; extracts features and classifies it with
  // the latest classifier (Fig 3(b)).
  Detection observe(double value);

  // Supplies operator labels covering points [labeled_until() , up_to) —
  // indices are global point indices since the beginning of history —
  // then incrementally retrains on everything labeled so far and updates
  // the cThld prediction from the newest labeled week.
  void ingest_labels(const ts::LabelSet& labels, std::size_t up_to);

  std::size_t points_seen() const { return values_seen_; }
  std::size_t labeled_until() const { return labeled_until_; }
  bool is_trained() const { return forest_.has_value(); }
  double current_cthld() const { return cthld_predictor_.predict(); }
  std::size_t num_features() const { return extractor_.num_features(); }

  // The detector-configuration importances of the current classifier
  // (which configurations the forest actually selected).
  std::vector<double> feature_importances() const;
  std::vector<std::string> feature_names() const {
    return extractor_.feature_names();
  }

 private:
  void retrain();

  detectors::SeriesContext ctx_;
  OpprenticeConfig config_;
  detectors::StreamingExtractor extractor_;

  // Accumulated history (column-major features, raw values, labels).
  std::vector<std::vector<double>> feature_columns_;
  std::vector<std::uint8_t> labels_;
  std::size_t values_seen_ = 0;
  std::size_t labeled_until_ = 0;

  std::optional<ml::RandomForest> forest_;
  EwmaCthldPredictor cthld_predictor_;
};

}  // namespace opprentice::core
