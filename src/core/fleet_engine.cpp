#include "core/fleet_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "core/cthld.hpp"
#include "eval/pr_curve.hpp"
#include "ml/serialize.hpp"
#include "obs/obs.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace opprentice::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Fleet-level instruments, looked up once per process (registration takes
// a mutex; updates are relaxed atomics).
struct FleetCounters {
  obs::Counter* points;
  obs::Counter* retrains;
  obs::Counter* train_failures;
  obs::Counter* quarantined;
};

const FleetCounters& fleet_counters() {
  static const FleetCounters counters{
      &obs::counter("opprentice.fleet.points"),
      &obs::counter("opprentice.fleet.retrains"),
      &obs::counter("opprentice.fleet.train_failures"),
      &obs::counter("opprentice.fleet.quarantined")};
  return counters;
}

}  // namespace

std::vector<detectors::DetectorPtr> fleet_lite_configurations(
    const detectors::SeriesContext& ctx) {
  const auto& registry = detectors::DetectorRegistry::with_standard_families();
  std::vector<detectors::DetectorPtr> out;
  for (const char* family : {"diff", "simple_ma", "ewma"}) {
    auto configs = registry.instantiate_family(family, ctx);
    for (auto& config : configs) {
      // Cap warm-up at one day (drops the week-lag diff): a fleet series
      // should classify within its first day, not sit dark for a week.
      if (config->warmup_points() > ctx.points_per_day) continue;
      out.push_back(std::move(config));
    }
  }
  return out;
}

// All per-series streaming state, guarded by one mutex per series. The
// engine is the only code that touches it; every method requiring the
// lock is annotated, so the OPPRENTICE_THREAD_SAFETY build proves the
// discipline statically.
class FleetSeries {
 public:
  FleetSeries(std::string id, std::size_t phase,
              detectors::StreamingExtractor extractor, double ewma_alpha)
      : id_(std::move(id)),
        salt_(util::stable_id_hash(id_)),
        phase_(phase),
        extractor_(std::move(extractor)),
        cthld_(ewma_alpha) {}

 private:
  friend class FleetEngine;

  // Appends one extracted row to the bounded training history.
  void append_row(const std::vector<double>& features, double value,
                  std::size_t history_capacity)
      OPPRENTICE_REQUIRES(mutex_) {
    for (std::size_t f = 0; f < features.size(); ++f) {
      columns_[f].push_back(features[f]);
    }
    values_.push_back(value);
    labels_.push_back(0);
    // Amortized trim: let the buffer grow to 2x capacity, then drop the
    // oldest half in one pass. The trim point is a pure function of the
    // point count, so bounded and unbounded histories differ only in
    // which rows a retrain can still see.
    if (history_capacity > 0 && values_.size() >= 2 * history_capacity) {
      const std::size_t drop = values_.size() - history_capacity;
      for (auto& column : columns_) {
        column.erase(column.begin(),
                     column.begin() + static_cast<std::ptrdiff_t>(drop));
      }
      values_.erase(values_.begin(),
                    values_.begin() + static_cast<std::ptrdiff_t>(drop));
      labels_.erase(labels_.begin(),
                    labels_.begin() + static_cast<std::ptrdiff_t>(drop));
      base_ += drop;
    }
  }

  // Retrains on the buffered labeled history, behind the forest.train
  // fault site keyed (series salt, point count). A window with no
  // positive labels is skipped silently — nothing to learn is not a
  // failure. Failures count toward quarantine.
  void retrain(const FleetOptions& options, std::size_t interval)
      OPPRENTICE_REQUIRES(mutex_) {
    const std::size_t warmup = extractor_.max_warmup();
    const std::size_t begin_local = warmup > base_ ? warmup - base_ : 0;
    const std::size_t end_global =
        std::min(labeled_until_, base_ + values_.size());
    if (end_global <= base_) return;
    const std::size_t end_local = end_global - base_;
    if (begin_local >= end_local) return;

    std::vector<std::vector<double>> train_columns(columns_.size());
    for (std::size_t f = 0; f < columns_.size(); ++f) {
      train_columns[f].assign(
          columns_[f].begin() + static_cast<std::ptrdiff_t>(begin_local),
          columns_[f].begin() + static_cast<std::ptrdiff_t>(end_local));
    }
    std::vector<std::uint8_t> train_labels(
        labels_.begin() + static_cast<std::ptrdiff_t>(begin_local),
        labels_.begin() + static_cast<std::ptrdiff_t>(end_local));
    ml::Dataset train(extractor_.feature_names(), std::move(train_columns),
                      std::move(train_labels));
    if (train.positives() == 0) return;

    const std::uint64_t key =
        util::fault_key(salt_, extractor_.points_seen());
    try {
      if (util::inject_fault(util::faults::kForestTrain, key)) {
        throw util::InjectedFault("injected forest.train");
      }
      ml::RandomForest forest(options.forest);
      forest.train(train);
      forest_ = std::move(forest);
      ++retrains_;
      consecutive_train_failures_ = 0;
      fleet_counters().retrains->add();

      // Best cThld on the most recent labeled window feeds the EWMA
      // predictor (§4.5.2) — the per-series cThld history.
      const std::size_t rows = train.num_rows();
      const std::size_t window = std::min(rows, interval);
      const ml::Dataset recent = train.slice(rows - window, rows);
      const std::vector<double> scores = forest_->score_all(recent);
      const eval::PrCurve curve(scores, recent.labels());
      const eval::ThresholdChoice best = eval::pick_threshold(
          curve, eval::ThresholdMethod::kPcScore, options.preference);
      if (cthld_.initialized()) {
        cthld_.observe_best(best.cthld);
      } else {
        cthld_.initialize(best.cthld);
      }
      // Keyed like the fault site, so retrain events line up with any
      // injected failures in the sorted dump (flight_recorder.hpp).
      obs::flight_record("fleet", "retrain", key, "series=" + id_);
    } catch (const std::exception& e) {
      ++train_failures_;
      ++consecutive_train_failures_;
      fleet_counters().train_failures->add();
      obs::log(obs::LogLevel::kWarn, "fleet", "train_failed",
               {{"series", id_}, {"error", e.what()}});
      obs::flight_record("fleet", "train_failed", key, "series=" + id_);
      if (options.quarantine_after > 0 &&
          consecutive_train_failures_ >= options.quarantine_after &&
          !quarantined_) {
        quarantined_ = true;
        fleet_counters().quarantined->add();
        obs::log(obs::LogLevel::kWarn, "fleet", "quarantine",
                 {{"series", id_},
                  {"consecutive_failures", consecutive_train_failures_}});
        obs::flight_record("fleet", "quarantine", salt_, "series=" + id_);
      }
    }
  }

  const std::string id_;
  const std::uint64_t salt_;
  const std::size_t phase_;

  // opprentice-locks: level(series_state)=20
  mutable util::Mutex mutex_;
  detectors::StreamingExtractor extractor_ OPPRENTICE_GUARDED_BY(mutex_);
  // Bounded training history, column-major like ml::Dataset. base_ is the
  // global point index of local row 0 (rows before it were trimmed).
  std::vector<std::vector<double>> columns_ OPPRENTICE_GUARDED_BY(mutex_);
  std::vector<double> values_ OPPRENTICE_GUARDED_BY(mutex_);
  std::vector<std::uint8_t> labels_ OPPRENTICE_GUARDED_BY(mutex_);
  std::size_t base_ OPPRENTICE_GUARDED_BY(mutex_) = 0;
  std::size_t labeled_until_ OPPRENTICE_GUARDED_BY(mutex_) = 0;
  std::optional<ml::RandomForest> forest_ OPPRENTICE_GUARDED_BY(mutex_);
  EwmaCthldPredictor cthld_ OPPRENTICE_GUARDED_BY(mutex_);
  bool quarantined_ OPPRENTICE_GUARDED_BY(mutex_) = false;
  std::size_t retrains_ OPPRENTICE_GUARDED_BY(mutex_) = 0;
  std::size_t train_failures_ OPPRENTICE_GUARDED_BY(mutex_) = 0;
  std::size_t consecutive_train_failures_ OPPRENTICE_GUARDED_BY(mutex_) = 0;
  ts::RepairReport repair_totals_ OPPRENTICE_GUARDED_BY(mutex_);
};

FleetEngine::FleetEngine(FleetOptions options)
    : options_(std::move(options)),
      scheduler_(options_.scheduler_seed,
                 options_.retrain_interval != 0
                     ? options_.retrain_interval
                     : options_.ctx.points_per_week),
      registry_(options_.shard_count, options_.scheduler_seed) {}

FleetEngine::~FleetEngine() = default;

SeriesHandle FleetEngine::add_series(const std::string& id) {
  return registry_.get_or_create(id, [&] {
    detectors::FaultBoundary boundary = options_.boundary;
    boundary.key_salt = util::stable_id_hash(id);
    std::vector<detectors::DetectorPtr> configs =
        options_.detector_factory
            ? options_.detector_factory(options_.ctx)
            : detectors::standard_configurations(options_.ctx);
    auto state = std::make_shared<FleetSeries>(
        id, scheduler_.phase(id),
        detectors::StreamingExtractor(std::move(configs), boundary),
        options_.cthld_ewma_alpha);
    {
      util::MutexLock lock(state->mutex_);
      state->columns_.resize(state->extractor_.num_features());
    }
    return state;
  });
}

SeriesHandle FleetEngine::find_series(std::string_view id) const {
  return registry_.find(id);
}

bool FleetEngine::remove_series(std::string_view id) {
  return registry_.erase(id);
}

std::size_t FleetEngine::series_count() const { return registry_.entry_count(); }

std::vector<std::string> FleetEngine::series_ids() const {
  return registry_.ids_sorted();
}

FleetDetection FleetEngine::feed(const SeriesHandle& series, double value) {
  FleetSeries& state = *series;
  util::MutexLock lock(state.mutex_);
  FleetDetection out;
  out.value = value;
  if (state.quarantined_) {
    out.score = kNaN;
    out.cthld = kNaN;
    return out;
  }
  const std::vector<double> features = state.extractor_.feed(value);
  state.append_row(features, value, options_.history_capacity);
  fleet_counters().points->add();

  if (state.forest_.has_value() && state.extractor_.warmed_up()) {
    out.score = state.forest_->score(features);
    out.cthld = state.cthld_.initialized() ? state.cthld_.predict() : 0.5;
    out.is_anomaly = out.score >= out.cthld;
    out.classified = true;
  } else {
    out.score = kNaN;
  }

  if (scheduler_.due_at(state.phase_, state.extractor_.points_seen())) {
    state.retrain(options_, scheduler_.interval());
  }
  return out;
}

void FleetEngine::feed_tick(std::span<const SeriesHandle> series,
                            std::span<const double> values,
                            std::span<FleetDetection> out) {
  const std::size_t n = std::min(series.size(), values.size());
  // Each slot is one independent series under its own lock writing its
  // own output element — bit-identical at any thread count. A grain of a
  // few series keeps pool dispatch off the per-point budget at 10k+.
  util::parallel_for(
      n, [&](std::size_t i) { out[i] = feed(series[i], values[i]); }, 8);
}

IngestOutcome FleetEngine::ingest_raw(const SeriesHandle& series,
                                      std::vector<ts::RawPoint> points,
                                      std::int64_t interval_seconds,
                                      ts::RepairPolicy policy) {
  FleetSeries& state = *series;
  std::string id;
  std::uint64_t salt = 0;
  {
    util::MutexLock lock(state.mutex_);
    id = state.id_;
    salt = state.salt_;
  }
  // Injection and repair run outside the series lock (they only touch
  // the local point vector); repair_series flight-records dirty streams
  // with the series id in the detail, which is the per-series
  // attribution the chaos tests assert.
  ts::inject_ingest_faults(points, salt);
  ts::RepairResult repaired =
      ts::repair_series(id, std::move(points), interval_seconds, policy);
  for (std::size_t i = 0; i < repaired.series.size(); ++i) {
    feed(series, repaired.series[i]);
  }
  util::MutexLock lock(state.mutex_);
  state.repair_totals_.out_of_order += repaired.report.out_of_order;
  state.repair_totals_.duplicates += repaired.report.duplicates;
  state.repair_totals_.gaps += repaired.report.gaps;
  state.repair_totals_.bad_values += repaired.report.bad_values;
  state.repair_totals_.misaligned += repaired.report.misaligned;
  return IngestOutcome{repaired.report, repaired.series.size()};
}

void FleetEngine::ingest_labels(const SeriesHandle& series,
                                std::span<const std::uint8_t> labels,
                                std::size_t begin) {
  FleetSeries& state = *series;
  util::MutexLock lock(state.mutex_);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::size_t global = begin + i;
    if (global < state.base_) continue;  // row already trimmed
    const std::size_t local = global - state.base_;
    if (local >= state.labels_.size()) break;  // not fed yet
    state.labels_[local] = labels[i];
  }
  const std::size_t end =
      std::min(begin + labels.size(), state.base_ + state.labels_.size());
  state.labeled_until_ = std::max(state.labeled_until_, end);
}

void FleetEngine::set_quarantined(const SeriesHandle& series,
                                  bool quarantined) {
  FleetSeries& state = *series;
  util::MutexLock lock(state.mutex_);
  if (quarantined && !state.quarantined_) {
    fleet_counters().quarantined->add();
    obs::flight_record("fleet", "quarantine", state.salt_,
                       "series=" + state.id_);
  }
  state.quarantined_ = quarantined;
}

FleetSeriesStats FleetEngine::stats(const SeriesHandle& series) const {
  const FleetSeries& state = *series;
  util::MutexLock lock(state.mutex_);
  FleetSeriesStats out;
  out.id = state.id_;
  out.phase = state.phase_;
  out.points_seen = state.extractor_.points_seen();
  out.labeled_until = state.labeled_until_;
  out.retrains = state.retrains_;
  out.train_failures = state.train_failures_;
  out.trained = state.forest_.has_value();
  out.quarantined = state.quarantined_;
  out.repairs = state.repair_totals_;
  return out;
}

std::string FleetEngine::forest_fingerprint(
    const SeriesHandle& series) const {
  const FleetSeries& state = *series;
  util::MutexLock lock(state.mutex_);
  if (!state.forest_.has_value()) return "";
  std::ostringstream out;
  ml::save_forest(out, *state.forest_, state.extractor_.feature_names());
  return out.str();
}

IncrementalRunResult FleetEngine::run_incremental(
    const ml::Dataset& data, std::size_t points_per_week, std::size_t warmup,
    const DriverOptions& options) const {
  obs::ScopedSpan run_span("weekly.run", "core");
  run_span.arg("rows", data.num_rows());
  const obs::Stopwatch run_watch;

  IncrementalRunResult result;
  result.test_start = options.initial_weeks * points_per_week;
  result.scores.assign(data.num_rows(), kNaN);

  // Enumerate the window schedule up front, then fan the weeks out across
  // the pool. Each week trains on its own (read-only) slice of history
  // with pre-fixed forest seeds and writes a disjoint [test_begin,
  // test_end) score range plus its own WeekResult slot, so the run is
  // bit-identical at any thread count.
  std::vector<StrategyWindows> schedule;
  for (std::size_t window = 0;; ++window) {
    const auto windows =
        strategy_windows(TrainingStrategy::kI1, window, data.num_rows(),
                         points_per_week, options.initial_weeks);
    if (!windows) break;
    schedule.push_back(*windows);
  }

  result.weeks.assign(schedule.size(), WeekResult{});
  util::parallel_for(schedule.size(), [&](std::size_t window) {
    const StrategyWindows& windows = schedule[window];
    obs::ScopedSpan week_span("weekly.window", "core");
    week_span.arg("week", window);
    week_span.arg("train_rows", windows.train_end - windows.train_begin);

    const std::vector<double> week_scores =
        run_strategy_window(data, warmup, windows, options.forest);
    std::copy(week_scores.begin(), week_scores.end(),
              result.scores.begin() +
                  static_cast<std::ptrdiff_t>(windows.test_begin));

    WeekResult wr;
    wr.test_begin = windows.test_begin;
    wr.test_end = windows.test_end;
    {
      obs::ScopedSpan pick_span("weekly.cthld_pick", "core");
      const ml::Dataset test =
          data.slice(windows.test_begin, windows.test_end);
      const eval::PrCurve curve(week_scores, test.labels());
      wr.best = eval::pick_threshold(curve, eval::ThresholdMethod::kPcScore,
                                     options.preference);
    }
    result.weeks[window] = wr;
    obs::counter("opprentice.weekly.windows").add();
    if (obs::log_enabled(obs::LogLevel::kInfo)) {
      obs::log(obs::LogLevel::kInfo, "weekly", "window_done",
               {{"week", window},
                {"best_cthld", wr.best.cthld},
                {"recall", wr.best.recall},
                {"precision", wr.best.precision}});
    }
  });
  obs::histogram("opprentice.weekly.run.ms").record(run_watch.elapsed_ms());
  return result;
}

std::optional<ml::RandomForest> train_forest_guarded(
    const ml::Dataset& data, std::size_t warmup, std::size_t train_begin,
    std::size_t train_end, const ml::ForestOptions& options,
    std::uint64_t key_salt) {
  const std::size_t begin = std::max(train_begin, warmup);
  if (begin >= train_end) return std::nullopt;
  const ml::Dataset train = data.slice(begin, train_end);
  if (train.positives() == 0) return std::nullopt;
  const std::uint64_t key = util::fault_key(begin, train_end) ^ key_salt;
  try {
    if (util::inject_fault(util::faults::kForestTrain, key)) {
      throw util::InjectedFault("injected forest.train");
    }
    ml::RandomForest forest(options);
    forest.train(train);
    return forest;
  } catch (const std::exception& e) {
    obs::counter("opprentice.forest.train_failures").add();
    obs::log(obs::LogLevel::kWarn, "weekly", "train_failed",
             {{"train_begin", begin},
              {"train_end", train_end},
              {"error", e.what()}});
    // Keyed by the training window, so the event stream is a pure
    // function of the schedule + fault plan regardless of which worker
    // hit the failure (flight_recorder.hpp).
    obs::flight_record("weekly", "train_failed", key,
                       "train_begin=" + std::to_string(begin) +
                           " train_end=" + std::to_string(train_end));
    return std::nullopt;
  }
}

double synthetic_fleet_value(std::uint64_t salt, std::size_t index,
                             std::size_t points_per_day) {
  if (points_per_day == 0) points_per_day = 1;
  const double day_position =
      static_cast<double>(index % points_per_day) /
      static_cast<double>(points_per_day);
  const double seasonal =
      100.0 + 25.0 * std::sin(6.283185307179586 * day_position);
  // Hash noise in [-2, 2): a pure function of (salt, index).
  const std::uint64_t h = util::fault_key(salt, index);
  const double noise =
      static_cast<double>(h >> 11) * 0x1.0p-53 * 4.0 - 2.0;
  return seasonal + noise;
}

}  // namespace opprentice::core
