// cThld configuration and prediction (§4.5).
//
// Offline ("oracle") mode picks the best cThld of a test set with the
// PC-Score. Online detection must *predict* next week's cThld from history:
// the paper's method is an EWMA over the historical best cThlds (initialized
// by 5-fold cross-validation); the baseline it beats is plain 5-fold
// cross-validation over all historical data.
#pragma once

#include "eval/threshold_pickers.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"

namespace opprentice::core {

// EWMA predictor over weekly best cThlds:
//   cthld_pred(i) = alpha * best(i-1) + (1 - alpha) * cthld_pred(i-1)
// alpha = 0.8 in the paper ("to quickly catch up with the cThld
// variation").
class EwmaCthldPredictor {
 public:
  explicit EwmaCthldPredictor(double alpha = 0.8) : alpha_(alpha) {}

  // Initializes the first prediction (the paper uses 5-fold CV for it).
  void initialize(double first_prediction);
  bool initialized() const { return initialized_; }

  // Prediction for the upcoming week.
  double predict() const { return prediction_; }

  // Feeds the best cThld measured on the week that just ended.
  void observe_best(double best_cthld);

 private:
  double alpha_;
  double prediction_ = 0.5;
  bool initialized_ = false;
};

struct FiveFoldOptions {
  std::size_t folds = 5;
  // §4.5.2: "we evaluate 1000 cThld candidates in a range of [0, 1]".
  std::size_t candidates = 1000;
};

// 5-fold cross-validation cThld selection: trains one forest per fold on
// the remaining rows, scores the held-out block, and returns the candidate
// cThld with the best average PC-Score across folds.
double five_fold_cthld(const ml::Dataset& training,
                       const eval::AccuracyPreference& pref,
                       const ml::ForestOptions& forest_options,
                       const FiveFoldOptions& options = {});

}  // namespace opprentice::core
