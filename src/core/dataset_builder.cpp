#include "core/dataset_builder.hpp"

namespace opprentice::core {

ml::Dataset build_dataset(const detectors::FeatureMatrix& features,
                          const ts::LabelSet& labels) {
  return ml::Dataset(features.feature_names, features.columns,
                     labels.to_point_labels(features.num_rows));
}

ml::Dataset build_dataset(const ts::TimeSeries& series,
                          const ts::LabelSet& labels) {
  return build_dataset(detectors::extract_standard_features(series), labels);
}

ExperimentData prepare_experiment(
    const datagen::GeneratedKpi& kpi,
    const labeling::OperatorModel& operator_model) {
  ExperimentData data;
  data.series = kpi.series;
  data.ground_truth = kpi.ground_truth;
  data.operator_labels = labeling::simulate_labeling(
      kpi.ground_truth, kpi.series.size(), operator_model);

  const detectors::FeatureMatrix features =
      detectors::extract_standard_features(kpi.series);
  data.dataset = build_dataset(features, data.operator_labels);
  data.points_per_week = kpi.series.points_per_week();
  data.warmup = features.max_warmup;
  return data;
}

}  // namespace opprentice::core
