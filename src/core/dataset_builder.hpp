// Assembles the machine-learning view of a labeled KPI: detector severities
// as features, operator labels as targets (Fig 2's "training set").
#pragma once

#include <cstdint>

#include "datagen/anomaly_injector.hpp"
#include "detectors/feature_extractor.hpp"
#include "labeling/operator_model.hpp"
#include "ml/dataset.hpp"
#include "timeseries/labels.hpp"
#include "timeseries/time_series.hpp"

namespace opprentice::core {

// Everything an experiment needs about one KPI, extracted once: the raw
// series, the ground truth, the operator labels actually trained on, and
// the severity feature matrix over the full series.
struct ExperimentData {
  ts::TimeSeries series;
  ts::LabelSet ground_truth;     // injected anomaly windows
  ts::LabelSet operator_labels;  // after labeling noise; training target
  ml::Dataset dataset;           // features + operator labels, full length
  std::size_t points_per_week = 0;
  std::size_t warmup = 0;        // rows < warmup are skipped everywhere
};

// Builds the dataset from a series + labels with the standard 133
// configurations (or custom detectors if supplied).
ml::Dataset build_dataset(const ts::TimeSeries& series,
                          const ts::LabelSet& labels);
ml::Dataset build_dataset(const detectors::FeatureMatrix& features,
                          const ts::LabelSet& labels);

// Full pipeline from a generated KPI: simulate operator labeling, extract
// the standard features, and package the experiment view.
ExperimentData prepare_experiment(
    const datagen::GeneratedKpi& kpi,
    const labeling::OperatorModel& operator_model = {});

}  // namespace opprentice::core
