#include "core/retrain_scheduler.hpp"

#include <string>

#include "util/fault_injection.hpp"

namespace opprentice::core {

RetrainScheduler::RetrainScheduler(std::uint64_t seed,
                                   std::size_t interval_points)
    : seed_(seed), interval_(interval_points == 0 ? 1 : interval_points) {}

std::size_t RetrainScheduler::phase(std::string_view id) const {
  return static_cast<std::size_t>(
      util::fault_key(seed_, util::stable_id_hash(id)) %
      static_cast<std::uint64_t>(interval_));
}

bool RetrainScheduler::due_at(std::size_t phase,
                              std::size_t points_seen) const {
  return points_seen >= interval_ && points_seen % interval_ == phase;
}

std::size_t RetrainScheduler::next_due(std::size_t phase,
                                       std::size_t points_seen) const {
  std::size_t n = points_seen + 1;
  if (n < interval_) n = interval_;
  const std::size_t rem = n % interval_;
  return rem <= phase ? n + (phase - rem) : n + interval_ - (rem - phase);
}

std::vector<std::size_t> RetrainScheduler::phase_histogram(
    const std::vector<std::string>& ids, std::size_t buckets) const {
  if (buckets == 0) buckets = 1;
  std::vector<std::size_t> histogram(buckets, 0);
  for (const auto& id : ids) {
    ++histogram[phase(id) * buckets / interval_];
  }
  return histogram;
}

}  // namespace opprentice::core
