#include "core/cthld.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <optional>

#include "eval/pr_curve.hpp"
#include "ml/kfold.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace opprentice::core {

void EwmaCthldPredictor::initialize(double first_prediction) {
  prediction_ = first_prediction;
  initialized_ = true;
}

void EwmaCthldPredictor::observe_best(double best_cthld) {
  if (!initialized_) {
    prediction_ = best_cthld;
    initialized_ = true;
  } else {
    prediction_ = alpha_ * best_cthld + (1.0 - alpha_) * prediction_;
  }
  obs::gauge("opprentice.cthld.ewma_prediction").set(prediction_);
  if (obs::log_enabled(obs::LogLevel::kDebug)) {
    obs::log(obs::LogLevel::kDebug, "cthld", "ewma_update",
             {{"observed_best", best_cthld}, {"prediction", prediction_}});
  }
}

double five_fold_cthld(const ml::Dataset& training,
                       const eval::AccuracyPreference& pref,
                       const ml::ForestOptions& forest_options,
                       const FiveFoldOptions& options) {
  obs::ScopedSpan span("cthld.five_fold", "core");
  span.arg("rows", training.num_rows());
  span.arg("folds", options.folds);
  span.arg("candidates", options.candidates);
  const obs::Stopwatch watch;

  const std::size_t n = training.num_rows();
  if (n < options.folds * 2 || training.positives() == 0) return 0.5;

  // Per-fold held-out scores, sorted descending, with prefix true-positive
  // counts so the candidate sweep evaluates each threshold in O(log n).
  struct FoldScores {
    std::vector<double> sorted_scores;      // descending
    std::vector<std::size_t> prefix_tp;     // prefix_tp[k] = TP among top k
    std::size_t positives = 0;
  };
  // Folds train and score independently (their forest seeds and data are
  // fixed up front), so they fan out across the pool; per-fold results
  // land in indexed slots and are collected in fold order, keeping the
  // pick identical at any thread count. The forest's own parallel train
  // runs inline here (nested parallel_for), avoiding oversubscription.
  const auto splits = ml::contiguous_folds(n, options.folds);
  std::vector<std::optional<FoldScores>> fold_slots(splits.size());
  util::parallel_for(splits.size(), [&](std::size_t f) {
    const auto& fold = splits[f];
    const ml::Dataset train_part =
        training.select_rows(ml::training_rows(fold, n));
    if (train_part.positives() == 0) return;
    ml::RandomForest forest(forest_options);
    forest.train(train_part);

    const ml::Dataset test_part =
        training.slice(fold.test_begin, fold.test_end);
    const std::vector<double> scores = forest.score_all(test_part);

    FoldScores fs;
    std::vector<std::size_t> order(scores.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return scores[a] > scores[b];
    });
    fs.sorted_scores.reserve(order.size());
    fs.prefix_tp.reserve(order.size() + 1);
    fs.prefix_tp.push_back(0);
    for (std::size_t i : order) {
      fs.sorted_scores.push_back(scores[i]);
      fs.prefix_tp.push_back(fs.prefix_tp.back() +
                             (test_part.label(i) != 0 ? 1 : 0));
      fs.positives += test_part.label(i) != 0 ? 1 : 0;
    }
    if (fs.positives > 0) fold_slots[f] = std::move(fs);
  });
  std::vector<FoldScores> folds;
  folds.reserve(splits.size());
  for (auto& slot : fold_slots) {
    if (slot) folds.push_back(std::move(*slot));
  }
  if (folds.empty()) return 0.5;

  // Sweep the candidate grid; keep the candidate with the best average
  // PC-Score across folds.
  double best_cthld = 0.5;
  double best_score = -1.0;
  for (std::size_t c = 0; c <= options.candidates; ++c) {
    const double cthld =
        static_cast<double>(c) / static_cast<double>(options.candidates);
    double total = 0.0;
    std::size_t counted = 0;
    for (const auto& fold : folds) {
      // Number of points with score >= cthld (scores sorted descending).
      const auto it = std::lower_bound(
          fold.sorted_scores.begin(), fold.sorted_scores.end(), cthld,
          [](double score, double t) { return score >= t; });
      const auto detected =
          static_cast<std::size_t>(it - fold.sorted_scores.begin());
      const std::size_t tp = fold.prefix_tp[detected];
      const double r = static_cast<double>(tp) /
                       static_cast<double>(fold.positives);
      if (detected == 0) continue;  // precision undefined
      const double p =
          static_cast<double>(tp) / static_cast<double>(detected);
      total += eval::pc_score(r, p, pref);
      ++counted;
    }
    if (counted == 0) continue;
    const double avg = total / static_cast<double>(counted);
    if (avg > best_score) {
      best_score = avg;
      best_cthld = cthld;
    }
  }
  obs::histogram("opprentice.cthld.five_fold.ms").record(watch.elapsed_ms());
  if (obs::log_enabled(obs::LogLevel::kInfo)) {
    obs::log(obs::LogLevel::kInfo, "cthld", "five_fold_done",
             {{"cthld", best_cthld},
              {"pc_score", best_score},
              {"ms", watch.elapsed_ms()}});
  }
  return best_cthld;
}

}  // namespace opprentice::core
