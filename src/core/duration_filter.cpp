#include "core/duration_filter.hpp"

namespace opprentice::core {

DurationFilter::DurationFilter(DurationFilterOptions options)
    : options_(options) {
  if (options_.min_run == 0) options_.min_run = 1;
}

bool DurationFilter::feed(bool anomalous) {
  if (anomalous) {
    // A bridged gap counts toward the incident's duration.
    const std::size_t prev = run_;
    run_ += gap_ + 1;
    gap_ = 0;
    return prev < options_.min_run && run_ >= options_.min_run;
  }
  if (run_ > 0 && gap_ < options_.merge_gap) {
    ++gap_;  // bridge the gap; run resumes if anomalies return
    return false;
  }
  run_ = 0;
  gap_ = 0;
  return false;
}

void DurationFilter::reset() {
  run_ = 0;
  gap_ = 0;
}

}  // namespace opprentice::core
