// Duration filter (§6 "Anomaly duration").
//
// The paper deliberately detects individual anomalous points and leaves
// alarm aggregation to "a simple threshold filter" on the duration of
// continuous anomalies: "if operators are only interested in continuous
// anomalies that last for more than 5 minutes, one can solve it through a
// simple threshold filter". This is that filter, plus an alarm gap policy
// so one long incident does not re-alert every point.
#pragma once

#include <cstddef>

#include "util/hotpath.hpp"

namespace opprentice::core {

struct DurationFilterOptions {
  // Minimum run of consecutive anomalous points before an alarm fires.
  std::size_t min_run = 1;
  // A short normal gap inside an anomalous run (<= merge_gap points) does
  // not reset the run — real incidents flicker.
  std::size_t merge_gap = 0;
};

class DurationFilter {
 public:
  explicit DurationFilter(DurationFilterOptions options = {});

  // Feeds one point-level decision; returns true exactly when an alarm
  // should fire (the ongoing anomalous run just reached min_run points).
  OPPRENTICE_HOT bool feed(bool anomalous);

  // Length of the current (possibly gap-bridged) anomalous run.
  std::size_t current_run() const { return run_; }

  // True while inside an alarmed incident (run >= min_run).
  bool in_incident() const { return run_ >= options_.min_run; }

  void reset();

 private:
  DurationFilterOptions options_;
  std::size_t run_ = 0;
  std::size_t gap_ = 0;
};

}  // namespace opprentice::core
