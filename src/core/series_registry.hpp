// Sharded concurrent registry for per-series fleet state (DESIGN.md §5i).
//
// The fleet engine owns tens of thousands of per-series state objects
// keyed by series id. A single map under a single mutex would serialize
// every feed; this registry splits the key space over a fixed number of
// shards (chosen at construction, never resized), each an ordered map
// under its own annotated `util::Mutex`. A series id maps to its shard by
// a seeded deterministic hash (util::stable_id_hash), so the shard layout
// is identical in every process and at any thread count — registry
// placement can never perturb results.
//
// Shards hold `std::shared_ptr<T>`: lookups hand out a reference the
// caller can use after the shard lock is released, so an evict racing a
// feed is safe — the feeder keeps the state alive, the registry merely
// forgets it. Iteration (`ids_sorted`) snapshots ids shard by shard and
// merges them into one globally sorted list, so every traversal order is
// deterministic regardless of shard count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/fault_injection.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace opprentice::core {

// Shard index for `id`: seeded hash reduced onto [0, shard_count).
// Deterministic across processes; exposed for tests and for callers that
// want to co-locate work by shard.
std::size_t registry_shard_index(std::string_view id, std::size_t shard_count,
                                 std::uint64_t seed);

template <typename T>
class SeriesRegistry {
 public:
  explicit SeriesRegistry(std::size_t shard_count = 16,
                          std::uint64_t seed = 0)
      : seed_(seed) {
    if (shard_count == 0) shard_count = 1;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  std::size_t shard_count() const { return shards_.size(); }

  // Returns the entry for `id`, creating it from `factory()` if absent.
  // The factory runs under the shard lock, so concurrent get_or_create
  // calls for the same id construct exactly one T.
  template <typename Factory>
  std::shared_ptr<T> get_or_create(const std::string& id, Factory&& factory) {
    Shard& shard = shard_for(id);
    util::MutexLock lock(shard.mutex);
    auto it = shard.entries.find(id);
    if (it != shard.entries.end()) return it->second;
    std::shared_ptr<T> made = factory();
    shard.entries.emplace(id, made);
    return made;
  }

  // Returns the entry for `id`, or nullptr when absent.
  std::shared_ptr<T> find(std::string_view id) const {
    const Shard& shard = shard_for(id);
    util::MutexLock lock(shard.mutex);
    const auto it = shard.entries.find(id);
    return it == shard.entries.end() ? nullptr : it->second;
  }

  bool contains(std::string_view id) const { return find(id) != nullptr; }

  // Removes `id`; returns false when it was not present. Outstanding
  // shared_ptr holders keep the state alive until they drop it.
  bool erase(std::string_view id) {
    Shard& shard = shard_for(id);
    util::MutexLock lock(shard.mutex);
    const auto it = shard.entries.find(id);
    if (it == shard.entries.end()) return false;
    shard.entries.erase(it);
    return true;
  }

  std::size_t entry_count() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mutex);
      n += shard->entries.size();
    }
    return n;
  }

  // All ids, globally sorted (shards hold ordered maps; the per-shard
  // runs are merged by a final sort). The snapshot is taken shard by
  // shard, so ids inserted concurrently may or may not appear — but any
  // id present for the whole call does.
  std::vector<std::string> ids_sorted() const {
    std::vector<std::string> ids;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mutex);
      for (const auto& [id, entry] : shard->entries) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  // Entries snapshot in globally sorted id order — the deterministic
  // traversal the fleet engine schedules ticks from.
  std::vector<std::pair<std::string, std::shared_ptr<T>>> snapshot_sorted()
      const {
    std::vector<std::pair<std::string, std::shared_ptr<T>>> out;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mutex);
      for (const auto& entry : shard->entries) out.push_back(entry);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

 private:
  struct Shard {
    // opprentice-locks: level(registry_shard)=10
    mutable util::Mutex mutex;
    std::map<std::string, std::shared_ptr<T>, std::less<>> entries
        OPPRENTICE_GUARDED_BY(mutex);
  };

  Shard& shard_for(std::string_view id) {
    return *shards_[registry_shard_index(id, shards_.size(), seed_)];
  }
  const Shard& shard_for(std::string_view id) const {
    return *shards_[registry_shard_index(id, shards_.size(), seed_)];
  }

  // unique_ptr per shard: Mutex is not movable, and a stable address per
  // shard keeps the capability the analysis tracks well-defined.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t seed_;
};

}  // namespace opprentice::core
