#include "core/opprentice.hpp"

#include <algorithm>
#include <stdexcept>

#include "eval/pr_curve.hpp"

namespace opprentice::core {

Opprentice::Opprentice(const detectors::SeriesContext& ctx,
                       OpprenticeConfig config)
    : Opprentice(detectors::standard_configurations(ctx), ctx,
                 std::move(config)) {}

Opprentice::Opprentice(std::vector<detectors::DetectorPtr> detector_set,
                       const detectors::SeriesContext& ctx,
                       OpprenticeConfig config)
    : ctx_(ctx),
      config_(std::move(config)),
      extractor_(std::move(detector_set)),
      cthld_predictor_(config_.cthld_ewma_alpha) {
  feature_columns_.resize(extractor_.num_features());
}

void Opprentice::bootstrap(const ts::TimeSeries& history,
                           const ts::LabelSet& labels) {
  if (values_seen_ != 0) {
    throw std::logic_error("Opprentice::bootstrap: already started");
  }
  for (std::size_t i = 0; i < history.size(); ++i) {
    const std::vector<double> features = extractor_.feed(history[i]);
    for (std::size_t f = 0; f < features.size(); ++f) {
      feature_columns_[f].push_back(features[f]);
    }
    ++values_seen_;
  }
  labels_ = labels.to_point_labels(values_seen_);
  labeled_until_ = values_seen_;
  retrain();

  // Initialize the cThld prediction with 5-fold CV over the bootstrap data
  // (§4.5.2: "For the first week, we use 5-fold cross-validation").
  if (forest_.has_value()) {
    const std::size_t begin = std::min(extractor_.max_warmup(), values_seen_);
    ml::Dataset train(extractor_.feature_names(), feature_columns_, labels_);
    cthld_predictor_.initialize(five_fold_cthld(
        train.slice(begin, values_seen_), config_.preference,
        config_.forest));
  }
}

Opprentice::Detection Opprentice::observe(double value) {
  const std::vector<double> features = extractor_.feed(value);
  for (std::size_t f = 0; f < features.size(); ++f) {
    feature_columns_[f].push_back(features[f]);
  }
  const bool past_warmup = extractor_.warmed_up();
  ++values_seen_;

  Detection d;
  d.value = value;
  d.cthld = cthld_predictor_.predict();
  if (forest_.has_value() && past_warmup) {
    d.score = forest_->score(features);
    d.is_anomaly = d.score >= d.cthld;
    d.classified = true;
  }
  return d;
}

void Opprentice::ingest_labels(const ts::LabelSet& labels,
                               std::size_t up_to) {
  up_to = std::min(up_to, values_seen_);
  if (up_to <= labeled_until_) return;

  labels_.resize(up_to, 0);
  for (const auto& w : labels.windows()) {
    for (std::size_t i = std::max(w.begin, labeled_until_);
         i < std::min(w.end, up_to); ++i) {
      labels_[i] = 1;
    }
  }
  labeled_until_ = up_to;
  retrain();

  // Update the cThld prediction from the newest labeled week: compute the
  // week's best cThld under the preference and feed it to the EWMA.
  if (!forest_.has_value()) return;
  const std::size_t week = ctx_.points_per_week;
  if (labeled_until_ < week) return;
  const std::size_t begin = labeled_until_ - week;

  ml::Dataset all(extractor_.feature_names(), feature_columns_, labels_);
  const ml::Dataset last_week = all.slice(begin, labeled_until_);
  if (last_week.positives() == 0) return;
  const eval::PrCurve curve(forest_->score_all(last_week),
                            last_week.labels());
  const auto choice = eval::pick_threshold(
      curve, eval::ThresholdMethod::kPcScore, config_.preference);
  cthld_predictor_.observe_best(choice.cthld);
}

void Opprentice::retrain() {
  const std::size_t begin = std::min(extractor_.max_warmup(), labeled_until_);
  if (begin >= labeled_until_) return;

  std::vector<std::vector<double>> cols(feature_columns_.size());
  for (std::size_t f = 0; f < feature_columns_.size(); ++f) {
    cols[f].assign(feature_columns_[f].begin() +
                       static_cast<std::ptrdiff_t>(begin),
                   feature_columns_[f].begin() +
                       static_cast<std::ptrdiff_t>(labeled_until_));
  }
  ml::Dataset train(extractor_.feature_names(), std::move(cols),
                    std::vector<std::uint8_t>(
                        labels_.begin() + static_cast<std::ptrdiff_t>(begin),
                        labels_.begin() +
                            static_cast<std::ptrdiff_t>(labeled_until_)));
  if (train.positives() == 0) return;  // nothing anomalous to learn yet

  ml::RandomForest forest(config_.forest);
  forest.train(train);
  forest_ = std::move(forest);
}

std::vector<double> Opprentice::feature_importances() const {
  if (!forest_.has_value()) return {};
  return forest_->feature_importances();
}

}  // namespace opprentice::core
