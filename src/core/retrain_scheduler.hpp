// Deterministic staggered retrain scheduling (DESIGN.md §5i).
//
// Retraining every series at the same point count would spike training
// load at week boundaries — netdata staggers per-metric training across
// its 3-hour window for exactly this reason (SNIPPETS.md §3). The fleet
// engine instead gives each series a fixed *phase* inside the retrain
// interval, derived purely from a seeded hash of the series id:
//
//   phase(id)             = hash(seed, id) mod interval
//   due(id, points_seen)  = points_seen >= interval
//                           && points_seen mod interval == phase(id)
//
// The schedule depends on nothing but (seed, id, interval): no clocks, no
// counters, no thread state. Two processes — or one process at different
// thread counts — compute the identical schedule, which is what the
// fleet determinism sweep asserts byte-for-byte.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace opprentice::core {

class RetrainScheduler {
 public:
  // `interval_points` is the number of points between retrains of one
  // series (a week of points in the paper's protocol). Zero is clamped
  // to one (every point due — degenerate but well-defined).
  RetrainScheduler(std::uint64_t seed, std::size_t interval_points);

  std::uint64_t seed() const { return seed_; }
  std::size_t interval() const { return interval_; }

  // The series' fixed slot in [0, interval): a pure seeded hash of the
  // id, so ids spread uniformly across the interval.
  std::size_t phase(std::string_view id) const;

  // True when a series that has consumed `points_seen` points must
  // retrain now. The first due point is the first phase hit at or after
  // one full interval, so a series never trains on less than an
  // interval of history.
  bool due_at(std::size_t phase, std::size_t points_seen) const;
  bool due(std::string_view id, std::size_t points_seen) const {
    return due_at(phase(id), points_seen);
  }

  // The next point count strictly after `points_seen` at which the
  // series is due.
  std::size_t next_due(std::size_t phase, std::size_t points_seen) const;

  // How many of `ids` land in each of `buckets` equal slices of the
  // interval — the spread the golden-schedule test bounds.
  std::vector<std::size_t> phase_histogram(
      const std::vector<std::string>& ids, std::size_t buckets) const;

 private:
  std::uint64_t seed_;
  std::size_t interval_;
};

}  // namespace opprentice::core
