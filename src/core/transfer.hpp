// Cross-KPI detection (§6 "Detection across the same types of KPIs").
//
// "Operators only have to label one or just a few KPIs. Then the
// classifier trained upon those labeled data can be used to detect across
// the same type of KPIs. Note that, in order to reuse the classifier for
// the data of different scales, the anomaly features extracted by basic
// detectors should be normalized."
//
// SeverityNormalizer learns a per-configuration scale from the source
// KPI's severity distribution and divides severities by it, making the
// feature space comparable across KPIs of the same type but different
// absolute scale.
#pragma once

#include <vector>

#include "ml/dataset.hpp"

namespace opprentice::core {

class SeverityNormalizer {
 public:
  // Fits per-feature scales: the 98th percentile of the (non-negative)
  // severity distribution. Robust to the anomalies in the tail while
  // capturing the feature's dynamic range.
  void fit(const ml::Dataset& reference);

  bool is_fitted() const { return !inv_scales_.empty(); }

  // Returns a dataset whose severity columns are divided by the fitted
  // scales (labels pass through). Throws std::logic_error if not fitted
  // or the feature count differs.
  ml::Dataset transform(const ml::Dataset& data) const;

  // Normalizes a single feature row in place (for streaming detection).
  void transform_row(std::vector<double>& row) const;

 private:
  std::vector<double> inv_scales_;
};

}  // namespace opprentice::core
