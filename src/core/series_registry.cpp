#include "core/series_registry.hpp"

namespace opprentice::core {

std::size_t registry_shard_index(std::string_view id, std::size_t shard_count,
                                 std::uint64_t seed) {
  if (shard_count <= 1) return 0;
  // fault_key remixes after the XOR — a bare `hash ^ seed` would leave
  // small seeds entirely in bits the >>32 reduction below discards.
  const std::uint64_t h = util::fault_key(seed, util::stable_id_hash(id));
  // Multiply-shift reduction (Lemire) on the high 32 bits: unbiased
  // enough for shard spread and avoids the modulo's weakness on
  // power-of-two shard counts.
  return static_cast<std::size_t>(((h >> 32) * shard_count) >> 32);
}

}  // namespace opprentice::core
