#include "core/weekly_driver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/fleet_engine.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace opprentice::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

const char* to_string(TrainingStrategy strategy) {
  switch (strategy) {
    case TrainingStrategy::kI1: return "I1";
    case TrainingStrategy::kI4: return "I4";
    case TrainingStrategy::kR4: return "R4";
    case TrainingStrategy::kF4: return "F4";
  }
  return "?";
}

std::optional<StrategyWindows> strategy_windows(TrainingStrategy strategy,
                                                std::size_t window_index,
                                                std::size_t num_rows,
                                                std::size_t points_per_week,
                                                std::size_t initial_weeks) {
  const std::size_t test_weeks =
      strategy == TrainingStrategy::kI1 ? 1 : 4;
  StrategyWindows w;
  w.test_begin = (initial_weeks + window_index) * points_per_week;
  w.test_end = w.test_begin + test_weeks * points_per_week;
  if (w.test_end > num_rows) return std::nullopt;

  switch (strategy) {
    case TrainingStrategy::kI1:
    case TrainingStrategy::kI4:
      w.train_begin = 0;  // all historical data
      w.train_end = w.test_begin;
      break;
    case TrainingStrategy::kR4:
      w.train_end = w.test_begin;
      w.train_begin = w.test_begin >= 8 * points_per_week
                          ? w.test_begin - 8 * points_per_week
                          : 0;
      break;
    case TrainingStrategy::kF4:
      w.train_begin = 0;
      w.train_end = initial_weeks * points_per_week;
      break;
  }
  return w;
}

std::vector<double> run_strategy_window(const ml::Dataset& data,
                                        std::size_t warmup,
                                        const StrategyWindows& windows,
                                        const ml::ForestOptions& options) {
  std::vector<double> scores(windows.test_end - windows.test_begin, kNaN);
  // A failed training window degrades instead of aborting the run: its
  // scores stay NaN, so its decisions are all 0 and other windows —
  // which train independently — are unaffected (DESIGN.md §5f).
  auto forest = train_forest_guarded(data, warmup, windows.train_begin,
                                     windows.train_end, options);
  if (!forest) return scores;

  obs::ScopedSpan span("weekly.score", "core");
  span.arg("rows", windows.test_end - windows.test_begin);
  const ml::Dataset test = data.slice(windows.test_begin, windows.test_end);
  return forest->score_all(test);
}

IncrementalRunResult run_weekly_incremental(const ml::Dataset& data,
                                            std::size_t points_per_week,
                                            std::size_t warmup,
                                            const DriverOptions& options) {
  // Thin client of the fleet engine: the I1 window fan-out lives in
  // FleetEngine::run_incremental, where the same scheduling and fault
  // containment also serve multi-series streaming. Constructing the
  // engine is cheap — detectors are only built when series are added,
  // and this batch protocol adds none.
  FleetOptions fleet;
  fleet.ctx.points_per_week = points_per_week;
  fleet.forest = options.forest;
  fleet.preference = options.preference;
  const FleetEngine engine(std::move(fleet));
  return engine.run_incremental(data, points_per_week, warmup, options);
}

std::vector<double> ewma_predicted_cthlds(const IncrementalRunResult& run,
                                          double initial_cthld,
                                          double alpha) {
  obs::ScopedSpan span("cthld.ewma_predict", "core");
  span.arg("weeks", run.weeks.size());
  std::vector<double> predicted;
  predicted.reserve(run.weeks.size());
  EwmaCthldPredictor predictor(alpha);
  predictor.initialize(initial_cthld);
  for (const auto& week : run.weeks) {
    predicted.push_back(predictor.predict());
    predictor.observe_best(week.best.cthld);
  }
  return predicted;
}

std::vector<double> five_fold_weekly_cthlds(const ml::Dataset& data,
                                            std::size_t points_per_week,
                                            std::size_t warmup,
                                            const DriverOptions& options) {
  std::vector<StrategyWindows> schedule;
  for (std::size_t window = 0;; ++window) {
    const auto windows =
        strategy_windows(TrainingStrategy::kI1, window, data.num_rows(),
                         points_per_week, options.initial_weeks);
    if (!windows) break;
    schedule.push_back(*windows);
  }

  // Weeks fan out across the pool; each week's five-fold selection (and
  // the forest trainings inside it) then runs inline on its worker.
  std::vector<double> cthlds(schedule.size(), 0.0);
  util::parallel_for(schedule.size(), [&](std::size_t window) {
    const std::size_t begin = std::max(schedule[window].train_begin, warmup);
    const ml::Dataset train = data.slice(begin, schedule[window].train_end);
    cthlds[window] =
        five_fold_cthld(train, options.preference, options.forest);
  });
  return cthlds;
}

std::vector<std::uint8_t> decisions_from_weekly_cthlds(
    const IncrementalRunResult& run,
    const std::vector<double>& weekly_cthlds) {
  std::vector<std::uint8_t> decisions(run.scores.size(), 0);
  for (std::size_t w = 0; w < run.weeks.size() && w < weekly_cthlds.size();
       ++w) {
    const auto& week = run.weeks[w];
    for (std::size_t i = week.test_begin; i < week.test_end; ++i) {
      const double s = run.scores[i];
      decisions[i] = (!std::isnan(s) && s >= weekly_cthlds[w]) ? 1 : 0;
    }
  }
  return decisions;
}

std::vector<WindowedMetrics> windowed_metrics(
    std::span<const std::uint8_t> decisions,
    std::span<const std::uint8_t> truth, std::size_t first_row,
    std::size_t window_points, std::size_t step_points) {
  std::vector<WindowedMetrics> out;
  const std::size_t n = std::min(decisions.size(), truth.size());
  for (std::size_t begin = first_row; begin + window_points <= n;
       begin += step_points) {
    const std::size_t end = begin + window_points;
    const auto counts =
        eval::confusion(decisions.subspan(begin, window_points),
                        truth.subspan(begin, window_points));
    WindowedMetrics wm;
    wm.begin = begin;
    wm.end = end;
    wm.recall = eval::recall(counts);
    wm.precision = eval::precision(counts);
    out.push_back(wm);
  }
  return out;
}

}  // namespace opprentice::core
